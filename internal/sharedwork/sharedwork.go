// Package sharedwork is the serving layer's work-deduplication
// substrate: where internal/plancache shares *compilation* across
// sessions, this package shares *execution*. Two mechanisms, composed
// by the facade and the server QUERY path:
//
//   - Flight: an in-flight execution registry with single-flight
//     semantics. Concurrent executions whose normalized key (SQL text +
//     compile geometry) matches an in-flight run attach to it and
//     receive the leader's Outcome instead of running the plan again —
//     the GLADE multi-query-optimization direction reduced to its
//     serving-path core. 64 identical concurrent statements run the
//     scan once.
//
//   - ResultCache: a small TTL'd LRU over completed Outcomes for
//     idempotent repeated statements, keyed exactly like the Flight.
//     Off by default; the facade invalidates it whenever the dataset
//     can change (Persist, dataset swap).
//
// Key discipline: the key extends the plan-cache key (SQL, partitions,
// morsel mode, optimizer passes) with the resolved morsel size, because
// partition and morsel geometry decide how float aggregates
// re-associate and therefore the result bytes. The worker count is
// deliberately excluded: the combine stage packs partial results in
// slice/morsel order, so scheduling parallelism never changes bytes —
// a 4-worker follower may attach to an 8-worker leader and receive a
// byte-identical result.
//
// Sharing discipline: an Outcome handed to more than one consumer is
// immutable. Its engine.Result is read-only by construction; its Events
// slice must be COPIED by every consumer that feeds it to an owning
// consumer (trace.FromEventsOwned takes ownership and may reorder in
// place). Flight.Do reports how many followers attached so leaders know
// whether their own copy is required.
package sharedwork

import (
	"container/list"
	"context"
	"sync"
	"time"

	"stethoscope/internal/engine"
	"stethoscope/internal/metrics"
	"stethoscope/internal/profiler"
)

// Key identifies one execution for deduplication and result reuse. Two
// executions share work only when every field matches; see the package
// comment for why workers are excluded and morsel size is not.
type Key struct {
	// SQL is the statement text, byte for byte (no normalization —
	// matching the plan-cache discipline).
	SQL string
	// Partitions is the requested mitosis fan-out, normalized by the
	// caller, with the adaptive Auto sentinel as its own key value (its
	// resolution is deterministic per catalog, so two Auto requests
	// resolve identically).
	Partitions int
	// Morsel selects the morsel-driven lowering.
	Morsel bool
	// MorselRows is the resolved morsel size (0 when Morsel is false).
	// Unlike the plan cache — where the size is a runtime option — the
	// size shapes per-morsel partial aggregates and is part of result
	// identity.
	MorselRows int
	// Passes names the optimizer pipeline.
	Passes string
}

// Outcome is one completed execution in transport form: everything a
// deduplicated or cached consumer needs to build its own Result without
// re-running the plan. Outcomes handed to multiple consumers are
// immutable; Events must be copied before any owning use (see the
// package comment).
type Outcome struct {
	Res    *engine.Result
	Events []profiler.Event
	// Elapsed is the leader's wall-clock execution time; attached and
	// cached consumers report it as-is (they did not run anything).
	Elapsed time.Duration
	// RunID is the durable-history id of the execution that actually
	// ran. Shared work shares its history record: every attached or
	// cached consumer's Stats points at the same run.
	RunID uint64

	// The leader's resolved execution settings, echoed into every
	// consumer's Stats so a shared result still reports the geometry it
	// was produced with.
	Partitions int
	Workers    int
	MorselRows int
	AutoTuned  bool
	TuneReason string
	CacheHit   bool
}

// CloneEvents returns a private copy of the outcome's event slice, the
// form required before handing events to an owning consumer such as
// trace.FromEventsOwned.
func (o *Outcome) CloneEvents() []profiler.Event {
	if len(o.Events) == 0 {
		return nil
	}
	out := make([]profiler.Event, len(o.Events))
	copy(out, o.Events)
	return out
}

// call is one in-flight execution in the Flight registry.
type call struct {
	done    chan struct{}
	out     *Outcome
	err     error
	waiters int // followers attached; read by the leader after removal
}

// Flight is the in-flight execution registry: a single-flight over
// Keys. It is safe for concurrent use by any number of sessions.
type Flight struct {
	mu    sync.Mutex
	calls map[Key]*call

	// led counts executions that ran as flight leaders; attached counts
	// executions served by waiting on a leader. Standalone cells by
	// default, re-homed by Instrument.
	led      *metrics.Counter
	attached *metrics.Counter
}

// NewFlight returns an empty registry.
func NewFlight() *Flight {
	return &Flight{
		calls:    map[Key]*call{},
		led:      &metrics.Counter{},
		attached: &metrics.Counter{},
	}
}

// Instrument re-homes the flight's counters into the registry (under
// stetho_sharedwork_*). Call before serving; counts recorded earlier
// stay in the old cells.
func (f *Flight) Instrument(reg *metrics.Registry) {
	if reg == nil {
		return
	}
	f.mu.Lock()
	f.led = reg.Counter("stetho_sharedwork_led_total")
	f.attached = reg.Counter("stetho_sharedwork_attached_total")
	f.mu.Unlock()
}

// Do executes run under single-flight semantics for key. The first
// caller for a key becomes the leader: it runs the function inline and
// its outcome is handed to every follower that arrived while it ran.
// Followers block until the leader finishes (or their own ctx is done)
// and report attached=true; a follower never observes a partially
// written Outcome. waiters reports, on the leader path only, how many
// followers attached — a leader with waiters > 0 must treat its
// outcome's Events as shared (copy before owning use).
//
// The registry entry is removed before the leader's outcome is
// published, so a caller arriving after completion always leads a fresh
// run — the Flight dedupes concurrency, it never caches.
//
// Leader errors propagate to followers as-is. A follower whose leader
// was canceled should re-run solo if its own ctx is still live; the
// Flight cannot distinguish the leader's cancellation from the
// follower's, so that policy belongs to the caller.
func (f *Flight) Do(ctx context.Context, key Key, run func() (*Outcome, error)) (out *Outcome, err error, attached bool, waiters int) {
	f.mu.Lock()
	if c, ok := f.calls[key]; ok {
		c.waiters++
		f.attached.Inc()
		f.mu.Unlock()
		select {
		case <-c.done:
			return c.out, c.err, true, 0
		case <-ctx.Done():
			return nil, ctx.Err(), true, 0
		}
	}
	c := &call{done: make(chan struct{})}
	f.calls[key] = c
	f.led.Inc()
	f.mu.Unlock()

	c.out, c.err = run()

	f.mu.Lock()
	delete(f.calls, key)
	waiters = c.waiters
	f.mu.Unlock()
	close(c.done)
	return c.out, c.err, false, waiters
}

// InFlight reports the number of distinct keys currently executing
// (diagnostics and the occupancy gauge).
func (f *Flight) InFlight() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return len(f.calls)
}

// Led and Attached expose the counters (tests and DBStats).
func (f *Flight) Led() int64      { return f.led.Load() }
func (f *Flight) Attached() int64 { return f.attached.Load() }

// CacheStats is a point-in-time snapshot of result-cache
// effectiveness.
type CacheStats struct {
	Hits          int64 // Get calls served from the cache
	Misses        int64 // Get calls that found nothing live
	Evictions     int64 // entries displaced by capacity pressure
	Expirations   int64 // entries dropped past their TTL
	Invalidations int64 // entries dropped by Purge (dataset change)
	Len           int   // entries currently cached
	Capacity      int   // maximum entries
	TTL           time.Duration
}

// ResultCache is a fixed-capacity LRU of completed Outcomes with a
// per-entry TTL. Expiry is lazy (checked on Get) plus opportunistic on
// Put, so an idle cache holds expired entries but never serves them.
// It is safe for concurrent use.
type ResultCache struct {
	mu       sync.Mutex
	capacity int
	ttl      time.Duration
	now      func() time.Time
	order    *list.List // front = most recently used; values are *rcSlot
	byKey    map[Key]*list.Element

	hits          *metrics.Counter
	misses        *metrics.Counter
	evictions     *metrics.Counter
	expirations   *metrics.Counter
	invalidations *metrics.Counter
}

type rcSlot struct {
	key     Key
	out     *Outcome
	expires time.Time
}

// NewResultCache returns a cache holding up to capacity outcomes, each
// live for ttl after insertion. Capacity < 1 clamps to 1; ttl <= 0
// means entries never expire by time (invalidation still applies).
func NewResultCache(capacity int, ttl time.Duration) *ResultCache {
	if capacity < 1 {
		capacity = 1
	}
	return &ResultCache{
		capacity:      capacity,
		ttl:           ttl,
		now:           time.Now,
		order:         list.New(),
		byKey:         make(map[Key]*list.Element, capacity),
		hits:          &metrics.Counter{},
		misses:        &metrics.Counter{},
		evictions:     &metrics.Counter{},
		expirations:   &metrics.Counter{},
		invalidations: &metrics.Counter{},
	}
}

// SetClock overrides the time source (tests exercising TTL expiry with
// a fake clock). Call before the cache is shared.
func (c *ResultCache) SetClock(now func() time.Time) {
	c.mu.Lock()
	c.now = now
	c.mu.Unlock()
}

// Instrument re-homes the cache's counters into the registry (under
// stetho_resultcache_*) and registers occupancy/capacity gauges.
func (c *ResultCache) Instrument(reg *metrics.Registry) {
	if c == nil || reg == nil {
		return
	}
	c.mu.Lock()
	c.hits = reg.Counter("stetho_resultcache_hits_total")
	c.misses = reg.Counter("stetho_resultcache_misses_total")
	c.evictions = reg.Counter("stetho_resultcache_evictions_total")
	c.expirations = reg.Counter("stetho_resultcache_expirations_total")
	c.invalidations = reg.Counter("stetho_resultcache_invalidations_total")
	c.mu.Unlock()
	reg.GaugeFunc("stetho_resultcache_entries", func() int64 { return int64(c.Len()) })
	reg.GaugeFunc("stetho_resultcache_capacity", func() int64 { return int64(c.capacity) })
}

// Get returns the live cached outcome for the key, promoting it on a
// hit. Expired entries are removed and reported as misses. Nil caches
// always miss, so call sites need no nil branch.
func (c *ResultCache) Get(k Key) (*Outcome, bool) {
	if c == nil {
		return nil, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.byKey[k]
	if !ok {
		c.misses.Inc()
		return nil, false
	}
	s := el.Value.(*rcSlot)
	if c.ttl > 0 && !c.now().Before(s.expires) {
		c.order.Remove(el)
		delete(c.byKey, k)
		c.expirations.Inc()
		c.misses.Inc()
		return nil, false
	}
	c.hits.Inc()
	c.order.MoveToFront(el)
	return s.out, true
}

// Put inserts or refreshes the outcome, restarting its TTL and evicting
// the least recently used entry under capacity pressure. Nil caches
// no-op.
func (c *ResultCache) Put(k Key, out *Outcome) {
	if c == nil || out == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	expires := time.Time{}
	if c.ttl > 0 {
		expires = c.now().Add(c.ttl)
	}
	if el, ok := c.byKey[k]; ok {
		s := el.Value.(*rcSlot)
		s.out, s.expires = out, expires
		c.order.MoveToFront(el)
		return
	}
	c.byKey[k] = c.order.PushFront(&rcSlot{key: k, out: out, expires: expires})
	for c.order.Len() > c.capacity {
		oldest := c.order.Back()
		c.order.Remove(oldest)
		delete(c.byKey, oldest.Value.(*rcSlot).key)
		c.evictions.Inc()
	}
}

// Purge invalidates every entry — the dataset-change hook (Persist,
// dataset swap). Dropped entries count as invalidations, not
// evictions.
func (c *ResultCache) Purge() {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.invalidations.Add(int64(c.order.Len()))
	c.order.Init()
	c.byKey = make(map[Key]*list.Element, c.capacity)
}

// Len reports the number of cached outcomes (including not-yet-swept
// expired entries).
func (c *ResultCache) Len() int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}

// Stats snapshots the counters. A nil cache reports zeros.
func (c *ResultCache) Stats() CacheStats {
	if c == nil {
		return CacheStats{}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{
		Hits:          c.hits.Load(),
		Misses:        c.misses.Load(),
		Evictions:     c.evictions.Load(),
		Expirations:   c.expirations.Load(),
		Invalidations: c.invalidations.Load(),
		Len:           c.order.Len(),
		Capacity:      c.capacity,
		TTL:           c.ttl,
	}
}

// Shared bundles the two mechanisms as the facade and its servers pass
// them around: a Flight (always present once a DB is open) and an
// optional ResultCache (nil unless WithResultCache configured one).
type Shared struct {
	Flight *Flight
	Cache  *ResultCache
}

// Instrument wires both components into the registry.
func (s *Shared) Instrument(reg *metrics.Registry) {
	if s == nil {
		return
	}
	s.Flight.Instrument(reg)
	s.Cache.Instrument(reg)
}
