package plancache

import (
	"fmt"
	"sync"
	"testing"

	"stethoscope/internal/mal"
)

func planNamed(q string) *Entry {
	return &Entry{Plan: mal.NewPlan(q)}
}

func key(q string) Key { return Key{SQL: q, Partitions: 1, Passes: "cse,deadcode"} }

func TestGetPutAndStats(t *testing.T) {
	c := New(4)
	if _, ok := c.Get(key("q1")); ok {
		t.Fatal("hit on empty cache")
	}
	c.Put(key("q1"), *planNamed("q1"))
	e, ok := c.Get(key("q1"))
	if !ok || e.Plan.Query != "q1" {
		t.Fatalf("expected q1 hit, got ok=%v", ok)
	}
	// Same SQL with different options is a distinct plan.
	if _, ok := c.Get(Key{SQL: "q1", Partitions: 8, Passes: "cse,deadcode"}); ok {
		t.Fatal("partition count must be part of the key")
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 2 || st.Len != 1 || st.Capacity != 4 {
		t.Fatalf("stats = %+v", st)
	}
	if got := st.HitRate(); got < 0.33 || got > 0.34 {
		t.Fatalf("hit rate = %v", got)
	}
}

func TestEvictionOrderIsLRU(t *testing.T) {
	c := New(3)
	for _, q := range []string{"a", "b", "c"} {
		c.Put(key(q), *planNamed(q))
	}
	// Touch "a" so "b" becomes the least recently used.
	if _, ok := c.Get(key("a")); !ok {
		t.Fatal("a missing")
	}
	c.Put(key("d"), *planNamed("d"))
	if _, ok := c.Get(key("b")); ok {
		t.Fatal("b should have been evicted (LRU)")
	}
	for _, q := range []string{"a", "c", "d"} {
		if _, ok := c.Get(key(q)); !ok {
			t.Fatalf("%s unexpectedly evicted", q)
		}
	}
	if st := c.Stats(); st.Evictions != 1 || st.Len != 3 {
		t.Fatalf("stats = %+v", st)
	}
	// Most recently used first.
	ks := c.Keys()
	if len(ks) != 3 || ks[0].SQL != "d" {
		t.Fatalf("keys = %v", ks)
	}
}

func TestPutRefreshDoesNotGrow(t *testing.T) {
	c := New(2)
	c.Put(key("a"), *planNamed("a"))
	c.Put(key("a"), *planNamed("a2"))
	if c.Len() != 1 {
		t.Fatalf("len = %d after refresh", c.Len())
	}
	e, _ := c.Get(key("a"))
	if e.Plan.Query != "a2" {
		t.Fatalf("refresh did not replace entry: %q", e.Plan.Query)
	}
	if st := c.Stats(); st.Evictions != 0 {
		t.Fatalf("refresh must not evict: %+v", st)
	}
}

func TestPurge(t *testing.T) {
	c := New(2)
	c.Put(key("a"), *planNamed("a"))
	c.Purge()
	if c.Len() != 0 {
		t.Fatalf("len = %d after purge", c.Len())
	}
	if _, ok := c.Get(key("a")); ok {
		t.Fatal("hit after purge")
	}
}

func TestClampedCapacity(t *testing.T) {
	c := New(0)
	c.Put(key("a"), *planNamed("a"))
	c.Put(key("b"), *planNamed("b"))
	if c.Len() != 1 {
		t.Fatalf("len = %d, want 1 (capacity clamped)", c.Len())
	}
}

func TestConcurrentAccess(t *testing.T) {
	c := New(16)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				q := fmt.Sprintf("q%d", (g+i)%32)
				if _, ok := c.Get(key(q)); !ok {
					c.Put(key(q), *planNamed(q))
				}
			}
		}(g)
	}
	wg.Wait()
	st := c.Stats()
	if st.Len > 16 {
		t.Fatalf("cache overflowed: %+v", st)
	}
	if st.Hits+st.Misses != 8*200 {
		t.Fatalf("lost gets: %+v", st)
	}
}
