// Package plancache implements the shared compiled-plan cache of the
// serving layer: an LRU keyed by SQL text plus the compile options that
// shape the emitted MAL (partition count, optimizer pipeline). Repeated
// statements skip the whole parse → bind → compile → optimize chain —
// MonetDB keeps the same structure per session in its MAL block cache;
// here one cache is shared by every session of a DB so concurrent
// clients warm it for each other.
//
// Cached plans are shared, not copied: a plan handed out by Get is
// executed concurrently by many queries, so holders must treat it as
// immutable (the engine only reads plans; optimizer passes run on
// clones before insertion).
package plancache

import (
	"container/list"
	"sync"

	"stethoscope/internal/dot"
	"stethoscope/internal/mal"
	"stethoscope/internal/metrics"
	"stethoscope/internal/optimizer"
)

// DefaultSize is the cache capacity the facade and the standalone
// server use unless configured otherwise.
const DefaultSize = 256

// Key identifies one compiled plan. Two queries share a plan only when
// every field matches.
type Key struct {
	// SQL is the statement text, byte for byte (no normalization —
	// differing whitespace compiles twice, which is cheap and safe).
	SQL string
	// Partitions is the requested mitosis partition count — normalized
	// by the caller (out-of-range values clamp to 1 before key
	// construction, so partitions=0 can never alias the partitions=1
	// plan under a second key), with the adaptive sentinel
	// (stethoscope.Auto) as its own key value: the resolved fan-out of
	// an auto compilation lives in Entry.Partitions.
	Partitions int
	// Morsel selects the morsel-driven lowering, which emits a
	// different plan shape (fragments + mat.morsel) than the static
	// mitosis lowering for the same SQL and partition count. The morsel
	// size is a runtime engine option, not part of the key: changing it
	// never recompiles.
	Morsel bool
	// Passes names the optimizer pipeline, e.g. "cse,matfold,deadcode".
	Passes string
}

// Entry is a cached compilation: the optimized plan and what the
// optimizer did to it, plus a holder for artifacts derived from the
// plan on demand.
type Entry struct {
	Plan *mal.Plan
	Opt  optimizer.Stats
	// Partitions is the mitosis fan-out actually compiled into the
	// plan. It equals Key.Partitions except for auto compilations,
	// where the key carries the sentinel and this carries the
	// resolution.
	Partitions int
	// TuneReason records why an auto compilation chose its fan-out
	// (empty for explicit partition counts). Memoized here so cache
	// hits still report the reason in Result.Stats and the history.
	TuneReason string
	// Rows memoizes the bound tree's driver rows (algebra.DriverRows)
	// for compilations that need a per-run adaptive resolution after
	// the cache hit — the Auto morsel size is chosen at execution time
	// from these rows without re-binding the query. Zero when the
	// compilation never measured them.
	Rows int
	// Aux memoizes derived per-plan artifacts (e.g. the dot export the
	// history store records per run). It lives and dies with the cache
	// entry, so memoized artifacts never outlive their plan. Fill it
	// when inserting (&Aux{}); it is nil for entries that never needed
	// one.
	Aux *Aux
}

// Aux memoizes expensive artifacts derived from an immutable cached
// plan. It is safe for concurrent use by every session sharing the
// entry.
type Aux struct {
	dotOnce sync.Once
	dot     string
}

// Dot returns the memoized dot text, rendering it on first use.
func (a *Aux) Dot(render func() string) string {
	a.dotOnce.Do(func() { a.dot = render() })
	return a.dot
}

// DotText renders a plan's dot-file text, memoized in aux when one
// exists — the shared helper of the facade Exec path and the server
// QUERY path, so a cached plan's dot export is rendered once no matter
// how many sessions trace or record it.
func DotText(plan *mal.Plan, aux *Aux) string {
	render := func() string { return dot.Export(plan).Marshal() }
	if aux == nil {
		return render()
	}
	return aux.Dot(render)
}

// Stats is a point-in-time snapshot of cache effectiveness.
type Stats struct {
	Hits      int64 // Get calls that found the plan
	Misses    int64 // Get calls that did not
	Evictions int64 // entries displaced by capacity pressure
	Len       int   // entries currently cached
	Capacity  int   // maximum entries
}

// HitRate returns hits / (hits + misses), 0 for an untouched cache.
func (s Stats) HitRate() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

// Cache is a fixed-capacity LRU over compiled plans. It is safe for
// concurrent use by any number of sessions.
type Cache struct {
	mu       sync.Mutex
	capacity int
	order    *list.List // front = most recently used; values are *slot
	byKey    map[Key]*list.Element

	// Effectiveness counters. Standalone metric cells by default;
	// Instrument swaps in registry-owned cells so the cache's own
	// accounting and the exposition endpoint read the same numbers.
	hits      *metrics.Counter
	misses    *metrics.Counter
	evictions *metrics.Counter
}

type slot struct {
	key   Key
	entry Entry
}

// New returns a cache holding up to capacity plans. Capacity < 1 is
// clamped to 1; callers that want caching off should simply not consult
// a cache.
func New(capacity int) *Cache {
	if capacity < 1 {
		capacity = 1
	}
	return &Cache{
		capacity:  capacity,
		order:     list.New(),
		byKey:     make(map[Key]*list.Element, capacity),
		hits:      &metrics.Counter{},
		misses:    &metrics.Counter{},
		evictions: &metrics.Counter{},
	}
}

// Instrument re-homes the cache's counters into the registry (under
// stetho_plancache_*) and registers occupancy/capacity gauges. Call
// before serving: counts recorded before Instrument stay in the old
// cells and are not carried over.
func (c *Cache) Instrument(reg *metrics.Registry) {
	if reg == nil {
		return
	}
	c.mu.Lock()
	c.hits = reg.Counter("stetho_plancache_hits_total")
	c.misses = reg.Counter("stetho_plancache_misses_total")
	c.evictions = reg.Counter("stetho_plancache_evictions_total")
	c.mu.Unlock()
	reg.GaugeFunc("stetho_plancache_entries", func() int64 { return int64(c.Len()) })
	reg.GaugeFunc("stetho_plancache_capacity", func() int64 { return int64(c.capacity) })
}

// Get looks the key up, promoting it to most recently used on a hit.
func (c *Cache) Get(k Key) (Entry, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.byKey[k]
	if !ok {
		c.misses.Inc()
		return Entry{}, false
	}
	c.hits.Inc()
	c.order.MoveToFront(el)
	return el.Value.(*slot).entry, true
}

// Put inserts or refreshes the entry, evicting the least recently used
// plan when the cache is full.
func (c *Cache) Put(k Key, e Entry) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.byKey[k]; ok {
		el.Value.(*slot).entry = e
		c.order.MoveToFront(el)
		return
	}
	c.byKey[k] = c.order.PushFront(&slot{key: k, entry: e})
	for c.order.Len() > c.capacity {
		oldest := c.order.Back()
		c.order.Remove(oldest)
		delete(c.byKey, oldest.Value.(*slot).key)
		c.evictions.Inc()
	}
}

// Purge drops every entry; the hit/miss/eviction counters keep counting.
func (c *Cache) Purge() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.order.Init()
	c.byKey = make(map[Key]*list.Element, c.capacity)
}

// Len reports the number of cached plans.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}

// Stats snapshots the counters.
func (c *Cache) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return Stats{
		Hits:      c.hits.Load(),
		Misses:    c.misses.Load(),
		Evictions: c.evictions.Load(),
		Len:       c.order.Len(),
		Capacity:  c.capacity,
	}
}

// Keys returns the cached keys from most to least recently used
// (diagnostics and tests).
func (c *Cache) Keys() []Key {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]Key, 0, c.order.Len())
	for el := c.order.Front(); el != nil; el = el.Next() {
		out = append(out, el.Value.(*slot).key)
	}
	return out
}
