//go:build race

package stethoscope

// raceEnabled reports that the race detector instruments this build;
// heap-measurement assertions are skipped (instrumentation inflates and
// distorts allocation sizes) while correctness checks still run.
const raceEnabled = true
