// Regression tests for execution-option validation and adaptive
// selection: every entry point (Exec, Explain, Debug, server QUERY)
// must normalize partition/worker settings before plan-cache keys are
// built or history metadata is recorded, and Auto must resolve to a
// concrete, recorded fan-out.
package stethoscope_test

import (
	"context"
	"strings"
	"testing"

	"stethoscope"
)

// TestExecOptionZeroDoesNotAliasPlanCache pins the ExecPartitions(0)
// bug: the un-normalized 0 used to compile the identical partitions=1
// plan into a second cache entry under Key{Partitions:0}.
func TestExecOptionZeroDoesNotAliasPlanCache(t *testing.T) {
	db := openTestDB(t)
	if _, err := db.Exec(context.Background(), figure1Query, stethoscope.ExecPartitions(1)); err != nil {
		t.Fatalf("Exec(partitions=1): %v", err)
	}
	for _, n := range []int{0, -3} {
		res, err := db.Exec(context.Background(), figure1Query, stethoscope.ExecPartitions(n))
		if err != nil {
			t.Fatalf("Exec(partitions=%d): %v", n, err)
		}
		if !res.Stats.CacheHit {
			t.Errorf("Exec(partitions=%d) missed the cache: settings were not normalized before key construction", n)
		}
		if res.Stats.Partitions != 1 {
			t.Errorf("Exec(partitions=%d) reports Partitions=%d, want 1", n, res.Stats.Partitions)
		}
	}
	if got := db.Stats().Cache.Len; got != 1 {
		t.Errorf("plan cache holds %d entries, want 1 (0/-3 aliased the partitions=1 plan)", got)
	}
}

// TestExecOptionZeroWorkersNormalized: worker counts Open would reject
// must clamp to sequential execution, not reach the engine raw.
func TestExecOptionZeroWorkersNormalized(t *testing.T) {
	db := openTestDB(t)
	for _, n := range []int{0, -1} {
		res, err := db.Exec(context.Background(), figure1Query, stethoscope.ExecWorkers(n))
		if err != nil {
			t.Fatalf("Exec(workers=%d): %v", n, err)
		}
		if res.Stats.Workers != 1 {
			t.Errorf("Exec(workers=%d) reports Workers=%d, want 1", n, res.Stats.Workers)
		}
	}
}

// TestExplainAndDebugShareNormalization: the sibling entry points run
// through the same validation helper as Exec.
func TestExplainAndDebugShareNormalization(t *testing.T) {
	db := openTestDB(t)
	base, err := db.Explain(figure1Query, stethoscope.ExecPartitions(1))
	if err != nil {
		t.Fatalf("Explain: %v", err)
	}
	zero, err := db.Explain(figure1Query, stethoscope.ExecPartitions(0))
	if err != nil {
		t.Fatalf("Explain(partitions=0): %v", err)
	}
	if zero != base {
		t.Error("Explain(partitions=0) produced a different listing than partitions=1")
	}
	if got := db.Stats().Cache.Len; got != 1 {
		t.Errorf("plan cache holds %d entries after Explain 1/0, want 1", got)
	}
	d1, err := db.Debug(figure1Query, stethoscope.ExecPartitions(1))
	if err != nil {
		t.Fatalf("Debug: %v", err)
	}
	d0, err := db.Debug(figure1Query, stethoscope.ExecPartitions(0))
	if err != nil {
		t.Fatalf("Debug(partitions=0): %v", err)
	}
	if d0.PlanSize() != d1.PlanSize() {
		t.Errorf("Debug(partitions=0) plan size %d != partitions=1 size %d", d0.PlanSize(), d1.PlanSize())
	}
}

// TestHistoryMetadataNormalized: the durable RunMeta must record the
// normalized (and resolved) settings, never the raw out-of-range input.
func TestHistoryMetadataNormalized(t *testing.T) {
	db, err := stethoscope.Open(
		stethoscope.WithScaleFactor(0.005), stethoscope.WithSeed(42),
		stethoscope.WithHistory(t.TempDir()))
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer db.Close()
	res, err := db.Exec(context.Background(), figure1Query,
		stethoscope.ExecPartitions(0), stethoscope.ExecWorkers(-2))
	if err != nil {
		t.Fatalf("Exec: %v", err)
	}
	run, err := db.History().Get(res.Stats.RunID)
	if err != nil {
		t.Fatalf("run %d not in history: %v", res.Stats.RunID, err)
	}
	if run.Info.Partitions != 1 || run.Info.Workers != 1 {
		t.Errorf("history recorded partitions=%d workers=%d, want 1/1",
			run.Info.Partitions, run.Info.Workers)
	}
	if run.Info.AutoTuned {
		t.Error("explicit (clamped) settings recorded as auto-tuned")
	}
}

// TestAutoExecution: Auto resolves to concrete counts, records why, and
// produces results identical to explicit sequential execution.
func TestAutoExecution(t *testing.T) {
	db, err := stethoscope.Open(
		stethoscope.WithScaleFactor(0.005), stethoscope.WithSeed(42),
		stethoscope.WithPartitions(stethoscope.Auto),
		stethoscope.WithWorkers(stethoscope.Auto),
		stethoscope.WithHistory(t.TempDir()))
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer db.Close()
	auto, err := db.Exec(context.Background(), figure1Query)
	if err != nil {
		t.Fatalf("Exec: %v", err)
	}
	if auto.Stats.Partitions < 1 || auto.Stats.Workers < 1 {
		t.Fatalf("auto resolved to partitions=%d workers=%d", auto.Stats.Partitions, auto.Stats.Workers)
	}
	if !auto.Stats.AutoTuned {
		t.Error("Stats.AutoTuned = false under Auto settings")
	}
	if !strings.Contains(auto.Stats.TuneReason, "auto:") {
		t.Errorf("Stats.TuneReason = %q, want an auto: note", auto.Stats.TuneReason)
	}
	// The history RunMeta carries the same resolution.
	run, err := db.History().Get(auto.Stats.RunID)
	if err != nil {
		t.Fatalf("run %d not in history: %v", auto.Stats.RunID, err)
	}
	if !run.Info.AutoTuned || run.Info.TuneReason != auto.Stats.TuneReason {
		t.Errorf("history auto metadata = %v %q, want true %q",
			run.Info.AutoTuned, run.Info.TuneReason, auto.Stats.TuneReason)
	}
	if run.Info.Partitions != auto.Stats.Partitions || run.Info.Workers != auto.Stats.Workers {
		t.Errorf("history records %d/%d, stats %d/%d",
			run.Info.Partitions, run.Info.Workers, auto.Stats.Partitions, auto.Stats.Workers)
	}
	// Results are byte-identical to explicit sequential execution.
	seq, err := db.Exec(context.Background(), figure1Query,
		stethoscope.ExecPartitions(1), stethoscope.ExecWorkers(1))
	if err != nil {
		t.Fatalf("Exec sequential: %v", err)
	}
	var autoBuf, seqBuf strings.Builder
	if err := auto.WriteTable(&autoBuf); err != nil {
		t.Fatal(err)
	}
	if err := seq.WriteTable(&seqBuf); err != nil {
		t.Fatal(err)
	}
	if autoBuf.String() != seqBuf.String() {
		t.Error("auto execution result differs from sequential execution")
	}
	// A second auto execution is a cache hit with the same resolution.
	again, err := db.Exec(context.Background(), figure1Query)
	if err != nil {
		t.Fatalf("Exec again: %v", err)
	}
	if !again.Stats.CacheHit {
		t.Error("second auto execution missed the plan cache")
	}
	if again.Stats.Partitions != auto.Stats.Partitions || again.Stats.TuneReason != auto.Stats.TuneReason {
		t.Error("cached auto execution lost its resolution metadata")
	}
}

// TestOpenValidatesConfig: Open still rejects bad explicit settings but
// accepts the Auto sentinel.
func TestOpenValidatesConfig(t *testing.T) {
	if _, err := stethoscope.Open(stethoscope.WithScaleFactor(0.005), stethoscope.WithPartitions(0)); err == nil {
		t.Error("Open(WithPartitions(0)) accepted")
	}
	if _, err := stethoscope.Open(stethoscope.WithScaleFactor(0.005), stethoscope.WithWorkers(-2)); err == nil {
		t.Error("Open(WithWorkers(-2)) accepted")
	}
	db, err := stethoscope.Open(stethoscope.WithScaleFactor(0.005),
		stethoscope.WithPartitions(stethoscope.Auto), stethoscope.WithWorkers(stethoscope.Auto))
	if err != nil {
		t.Fatalf("Open(Auto) rejected: %v", err)
	}
	if _, err := db.Exec(context.Background(), figure1Query); err != nil {
		t.Fatalf("Exec under Auto defaults: %v", err)
	}
}

// TestRecordPreservesAutoMetadata: the offline Record path (tracegen
// -store) must persist the auto-tune resolution exactly as the live
// Exec recording path does.
func TestRecordPreservesAutoMetadata(t *testing.T) {
	db, err := stethoscope.Open(
		stethoscope.WithScaleFactor(0.005), stethoscope.WithSeed(42),
		stethoscope.WithPartitions(stethoscope.Auto),
		stethoscope.WithWorkers(stethoscope.Auto))
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	res, err := db.Exec(context.Background(), figure1Query)
	if err != nil {
		t.Fatalf("Exec: %v", err)
	}
	h, err := stethoscope.OpenHistory(t.TempDir())
	if err != nil {
		t.Fatalf("OpenHistory: %v", err)
	}
	defer h.Close()
	id, err := h.Record(res)
	if err != nil {
		t.Fatalf("Record: %v", err)
	}
	run, err := h.Get(id)
	if err != nil {
		t.Fatalf("Get: %v", err)
	}
	if !run.Info.AutoTuned || run.Info.TuneReason != res.Stats.TuneReason {
		t.Errorf("Record dropped auto metadata: %v %q, want true %q",
			run.Info.AutoTuned, run.Info.TuneReason, res.Stats.TuneReason)
	}
	if run.Info.Partitions != res.Stats.Partitions || run.Info.Workers != res.Stats.Workers {
		t.Errorf("Record stored %d/%d, stats %d/%d",
			run.Info.Partitions, run.Info.Workers, res.Stats.Partitions, res.Stats.Workers)
	}
}
