// Offline replay: the paper's offline demo. A dot + trace pair is
// produced (as cmd/tracegen would), written to disk, reopened with
// core.OpenOffline, and then driven interactively: step-by-step
// walk-through, fast-forward, rewind, pause, coloring between two
// instruction states, and the birds-eye view of the whole trace.
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"
	"time"

	"stethoscope/internal/algebra"
	"stethoscope/internal/ascii"
	"stethoscope/internal/compiler"
	"stethoscope/internal/core"
	"stethoscope/internal/dot"
	"stethoscope/internal/engine"
	"stethoscope/internal/profiler"
	"stethoscope/internal/sql"
	"stethoscope/internal/storage"
	"stethoscope/internal/tpch"
)

func main() {
	const query = `select l_returnflag, sum(l_quantity) as qty, count(*) as n
		from lineitem where l_quantity > 10 group by l_returnflag order by l_returnflag`

	// Produce the offline artifacts: <dir>/plan.dot and <dir>/plan.trace.
	dir, err := os.MkdirTemp("", "stethoscope-offline")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	dotPath := filepath.Join(dir, "plan.dot")
	tracePath := filepath.Join(dir, "plan.trace")

	cat := storage.NewCatalog()
	if err := tpch.Load(cat, tpch.Config{SF: 0.005, Seed: 1}); err != nil {
		log.Fatal(err)
	}
	stmt, err := sql.Parse(query)
	if err != nil {
		log.Fatal(err)
	}
	tree, err := algebra.Bind(stmt, cat)
	if err != nil {
		log.Fatal(err)
	}
	plan, err := compiler.Compile(tree, stmt.Text, compiler.Options{Partitions: 4})
	if err != nil {
		log.Fatal(err)
	}
	if err := os.WriteFile(dotPath, []byte(dot.Export(plan).Marshal()), 0o644); err != nil {
		log.Fatal(err)
	}
	f, err := os.Create(tracePath)
	if err != nil {
		log.Fatal(err)
	}
	sink := profiler.NewWriterSink(f)
	if _, err := engine.New(cat).Run(plan, engine.Options{Workers: 4, Profiler: profiler.New(sink)}); err != nil {
		log.Fatal(err)
	}
	sink.Flush()
	f.Close()
	fmt.Printf("wrote %s and %s\n", dotPath, tracePath)

	// Offline mode proper: open the files.
	dotText, _ := os.ReadFile(dotPath)
	traceText, _ := os.ReadFile(tracePath)
	sess, err := core.OpenOffline(string(dotText), string(traceText), core.SessionOptions{
		DispatchDelay: 10 * time.Millisecond,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("opened session: %d nodes, %d trace events, mapping complete: %v\n",
		len(sess.Graph.Nodes), sess.Trace.Len(), sess.Mapping.Complete())

	// Step-by-step walk-through of the first events.
	now := time.Unix(0, 0)
	fmt.Println("\n== step-by-step ==")
	for i := 0; i < 4; i++ {
		e, ok := sess.Replay.Step(now)
		if !ok {
			break
		}
		fmt.Printf("step %d: %s pc=%d %s\n", i+1, e.State, e.PC, e.Stmt)
	}
	sess.Queue.Flush(now.Add(time.Minute))

	// Fast-forward through half the trace, render, rewind a bit.
	sess.Replay.FastForward(sess.Trace.Len()/2 - 4)
	fmt.Printf("\n== display at the midpoint (position %d/%d) ==\n",
		sess.Replay.Position(), sess.Replay.Len())
	fmt.Print(ascii.RenderGraph(sess.Graph, sess.Layout, sess.Fills(), ascii.Options{Width: 120}))

	sess.Replay.Rewind(10)
	fmt.Printf("rewound to position %d\n", sess.Replay.Position())

	// Coloring between two instruction states (pair-elision on a window).
	from, to := 0, sess.Trace.Len()/2
	coloring, err := sess.Replay.ColorBetween(from, to)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n== pair-elision coloring on window [%d,%d): %d nodes flagged ==\n", from, to, len(coloring))
	for pc, c := range coloring {
		fmt.Printf("  pc=%d -> %s\n", pc, c)
		if len(coloring) > 8 {
			break
		}
	}

	// Birds-eye view of the whole trace.
	fmt.Println("\n== birds-eye view ==")
	fmt.Print(ascii.RenderBirdsEye(core.BirdsEye(sess.Trace, 6), ascii.DefaultOptions()))

	// Threshold coloring for comparison (the paper's second algorithm).
	th := core.Threshold(sess.Trace.Events(), 200)
	fmt.Printf("\nthreshold(200us) flags %d instructions\n", len(th))

	fmt.Println("\noffline replay OK")
}
