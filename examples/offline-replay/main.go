// Offline replay: the paper's offline demo. A dot + trace pair is
// produced (as cmd/tracegen would), written to disk, reopened with
// stethoscope.OpenOffline, and then driven interactively: step-by-step
// walk-through, fast-forward, rewind, pause, coloring between two
// instruction states, and the birds-eye view of the whole trace.
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"time"

	"stethoscope"
)

func main() {
	const query = `select l_returnflag, sum(l_quantity) as qty, count(*) as n
		from lineitem where l_quantity > 10 group by l_returnflag order by l_returnflag`

	// Produce the offline artifacts: <dir>/plan.dot and <dir>/plan.trace.
	dir, err := os.MkdirTemp("", "stethoscope-offline")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	dotPath := filepath.Join(dir, "plan.dot")
	tracePath := filepath.Join(dir, "plan.trace")

	db, err := stethoscope.Open(stethoscope.WithScaleFactor(0.005), stethoscope.WithSeed(1))
	if err != nil {
		log.Fatal(err)
	}
	res, err := db.Exec(context.Background(), query,
		stethoscope.ExecPartitions(4), stethoscope.ExecWorkers(4))
	if err != nil {
		log.Fatal(err)
	}
	if err := os.WriteFile(dotPath, []byte(res.Dot()), 0o644); err != nil {
		log.Fatal(err)
	}
	if err := os.WriteFile(tracePath, []byte(res.TraceText()), 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %s and %s\n", dotPath, tracePath)

	// Offline mode proper: open the files.
	dotText, _ := os.ReadFile(dotPath)
	traceText, _ := os.ReadFile(tracePath)
	a, err := stethoscope.OpenOffline(string(dotText), string(traceText),
		stethoscope.WithDispatchDelay(10*time.Millisecond))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("opened session: %d nodes, %d trace events, mapping complete: %v\n",
		a.Nodes(), a.TraceLen(), a.MappingComplete())

	// Step-by-step walk-through of the first events.
	now := time.Unix(0, 0)
	replay := a.Replay()
	fmt.Println("\n== step-by-step ==")
	for i := 0; i < 4; i++ {
		e, ok := replay.Step(now)
		if !ok {
			break
		}
		fmt.Printf("step %d: %s pc=%d %s\n", i+1, e.State, e.PC, e.Stmt)
	}
	a.FlushReplay(now.Add(time.Minute))

	// Fast-forward through half the trace, render, rewind a bit.
	replay.FastForward(a.TraceLen()/2 - 4)
	fmt.Printf("\n== display at the midpoint (position %d/%d) ==\n",
		replay.Position(), replay.Len())
	fmt.Print(a.RenderReplay(stethoscope.RenderOptions{Width: 120}))

	replay.Rewind(10)
	fmt.Printf("rewound to position %d\n", replay.Position())

	// Coloring between two instruction states (pair-elision on a window).
	from, to := 0, a.TraceLen()/2
	coloring, err := a.ColorBetween(from, to)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n== pair-elision coloring on window [%d,%d): %d nodes flagged ==\n", from, to, len(coloring))
	for pc, c := range coloring {
		fmt.Printf("  pc=%d -> %s\n", pc, c)
		if len(coloring) > 8 {
			break
		}
	}

	// Birds-eye view of the whole trace.
	fmt.Println("\n== birds-eye view ==")
	fmt.Print(stethoscope.RenderBirdsEye(a.BirdsEye(6), stethoscope.DefaultRender()))

	// Threshold coloring for comparison (the paper's second algorithm).
	a.Recolor(stethoscope.WithColoring(stethoscope.ColorThreshold), stethoscope.WithThreshold(200))
	fmt.Printf("\nthreshold(200us) flags %d instructions\n", len(a.Coloring()))

	fmt.Println("\noffline replay OK")
}
