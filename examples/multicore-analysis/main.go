// Multicore analysis: the paper's headline discovery scenario — "using
// Stethoscope we have uncovered several unusual cases, such as sequential
// execution of a MAL plan where multithreaded execution was expected."
// The same partitioned query runs twice: once on a full worker pool and
// once accidentally serialized. The utilization analysis shows the
// difference, and the anomaly detector flags the sequential run.
package main

import (
	"fmt"
	"log"

	"stethoscope/internal/algebra"
	"stethoscope/internal/ascii"
	"stethoscope/internal/compiler"
	"stethoscope/internal/core"
	"stethoscope/internal/engine"
	"stethoscope/internal/profiler"
	"stethoscope/internal/sql"
	"stethoscope/internal/storage"
	"stethoscope/internal/tpch"
	"stethoscope/internal/trace"
)

func main() {
	const query = `select l_orderkey, l_partkey, l_quantity, l_extendedprice, l_discount
		from lineitem where l_quantity > 5 and l_discount < 0.09`
	const expectedWorkers = 8

	cat := storage.NewCatalog()
	if err := tpch.Load(cat, tpch.Config{SF: 0.02, Seed: 99}); err != nil {
		log.Fatal(err)
	}
	stmt, err := sql.Parse(query)
	if err != nil {
		log.Fatal(err)
	}
	tree, err := algebra.Bind(stmt, cat)
	if err != nil {
		log.Fatal(err)
	}
	// A mitosis-partitioned plan: plenty of independent work.
	plan, err := compiler.Compile(tree, stmt.Text, compiler.Options{Partitions: 16})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("plan: %d instructions across 16 partitions\n", len(plan.Instrs))

	eng := engine.New(cat)
	run := func(workers int) core.Utilization {
		sink := &profiler.SliceSink{}
		prof := profiler.New(sink)
		if _, err := eng.Run(plan, engine.Options{Workers: workers, Profiler: prof}); err != nil {
			log.Fatal(err)
		}
		return core.Utilize(trace.FromEvents(sink.Events()))
	}

	fmt.Printf("\n== expected: dataflow on %d workers ==\n", expectedWorkers)
	parallel := run(expectedWorkers)
	fmt.Print(ascii.RenderUtilization(parallel, ascii.DefaultOptions()))

	fmt.Println("\n== the anomaly: the same plan, accidentally serialized ==")
	sequential := run(1)
	fmt.Print(ascii.RenderUtilization(sequential, ascii.DefaultOptions()))

	fmt.Println()
	if core.SequentialAnomaly(sequential, expectedWorkers) {
		fmt.Printf("ANOMALY: plan expected on %d threads executed on %d — sequential execution where multithreaded was expected\n",
			expectedWorkers, sequential.Threads)
	} else {
		log.Fatal("anomaly detector failed to flag the sequential run")
	}
	if core.SequentialAnomaly(parallel, expectedWorkers) {
		log.Fatal("anomaly detector misfired on the parallel run")
	}
	fmt.Printf("parallel run used %d threads (parallelism factor %.2f vs %.2f sequential)\n",
		parallel.Threads, parallel.Parallelism, sequential.Parallelism)

	fmt.Println("\nmulticore analysis OK")
}
