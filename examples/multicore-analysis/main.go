// Multicore analysis: the paper's headline discovery scenario — "using
// Stethoscope we have uncovered several unusual cases, such as sequential
// execution of a MAL plan where multithreaded execution was expected."
// The same partitioned query runs twice: once on a full worker pool and
// once accidentally serialized. The utilization analysis shows the
// difference, and the anomaly detector flags the sequential run.
package main

import (
	"context"
	"fmt"
	"log"
	"runtime"

	"stethoscope"
)

func main() {
	const query = `select l_orderkey, l_partkey, l_quantity, l_extendedprice, l_discount
		from lineitem where l_quantity > 5 and l_discount < 0.09`
	const expectedWorkers = 8

	db, err := stethoscope.Open(stethoscope.WithScaleFactor(0.02), stethoscope.WithSeed(99))
	if err != nil {
		log.Fatal(err)
	}
	// A mitosis-partitioned plan: plenty of independent work.
	run := func(workers int) stethoscope.Utilization {
		res, err := db.Exec(context.Background(), query,
			stethoscope.ExecPartitions(16), stethoscope.ExecWorkers(workers))
		if err != nil {
			log.Fatal(err)
		}
		if workers == expectedWorkers {
			fmt.Printf("plan: %d instructions across 16 partitions\n", res.Stats.Instructions)
		}
		return res.Utilization()
	}

	fmt.Printf("\n== expected: dataflow on %d workers ==\n", expectedWorkers)
	parallel := run(expectedWorkers)
	fmt.Print(stethoscope.RenderUtilization(parallel, stethoscope.DefaultRender()))

	fmt.Println("\n== the anomaly: the same plan, accidentally serialized ==")
	sequential := run(1)
	fmt.Print(stethoscope.RenderUtilization(sequential, stethoscope.DefaultRender()))

	fmt.Println()
	if stethoscope.SequentialAnomaly(sequential, expectedWorkers) {
		fmt.Printf("ANOMALY: plan expected on %d threads executed on %d — sequential execution where multithreaded was expected\n",
			expectedWorkers, sequential.Threads)
	} else {
		log.Fatal("anomaly detector failed to flag the sequential run")
	}
	if stethoscope.SequentialAnomaly(parallel, expectedWorkers) {
		// With one schedulable CPU the worker pool genuinely serializes —
		// the detector is then telling the truth, not misfiring.
		if runtime.GOMAXPROCS(0) > 1 {
			log.Fatal("anomaly detector misfired on the parallel run")
		}
		fmt.Println("note: single-CPU host — the parallel run serialized too, as the detector reports")
	}
	fmt.Printf("parallel run used %d threads (parallelism factor %.2f vs %.2f sequential)\n",
		parallel.Threads, parallel.Parallelism, sequential.Parallelism)

	fmt.Println("\nmulticore analysis OK")
}
