// Quickstart: the full Stethoscope pipeline in-process, on the paper's
// own example query (Figure 1: "select l_tax from lineitem where
// l_partkey=1"): generate TPC-H data, compile SQL to a MAL plan, execute
// it under the profiler, build the analysis session, and print the
// colored plan with the costly-instruction report.
package main

import (
	"fmt"
	"log"
	"strings"

	"stethoscope/internal/algebra"
	"stethoscope/internal/ascii"
	"stethoscope/internal/compiler"
	"stethoscope/internal/core"
	"stethoscope/internal/dot"
	"stethoscope/internal/engine"
	"stethoscope/internal/optimizer"
	"stethoscope/internal/profiler"
	"stethoscope/internal/sql"
	"stethoscope/internal/storage"
	"stethoscope/internal/tpch"
	"stethoscope/internal/trace"
)

func main() {
	const query = "select l_tax from lineitem where l_partkey=1"

	// 1. The data substrate: a synthetic TPC-H catalog.
	cat := storage.NewCatalog()
	if err := tpch.Load(cat, tpch.Config{SF: 0.005, Seed: 42}); err != nil {
		log.Fatal(err)
	}

	// 2. SQL -> relational algebra -> MAL -> optimized MAL.
	stmt, err := sql.Parse(query)
	if err != nil {
		log.Fatal(err)
	}
	tree, err := algebra.Bind(stmt, cat)
	if err != nil {
		log.Fatal(err)
	}
	plan, err := compiler.Compile(tree, stmt.Text, compiler.Options{})
	if err != nil {
		log.Fatal(err)
	}
	plan, stats, err := optimizer.Default().Run(plan)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("== MAL plan (paper Figure 1) ==")
	fmt.Print(plan)
	fmt.Println(stats)

	// 3. Execute under the profiler: one start + one done event per
	// instruction (paper Figure 3).
	sink := &profiler.SliceSink{}
	prof := profiler.New(sink)
	res, err := engine.New(cat).Run(plan, engine.Options{Profiler: prof})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nquery returned %d rows; trace has %d events\n", res.Rows(), len(sink.Events()))
	fmt.Println("\n== first trace lines ==")
	for i, e := range sink.Events() {
		if i == 6 {
			fmt.Println("...")
			break
		}
		fmt.Println(e.Marshal())
	}

	// 4. Build the analysis session: dot export, layout, svg, glyphs,
	// pc-to-node mapping.
	g := dot.Export(plan)
	st := trace.FromEvents(sink.Events())
	sess, err := core.NewSession(g, st, core.SessionOptions{})
	if err != nil {
		log.Fatal(err)
	}
	if !sess.Mapping.Complete() {
		log.Fatalf("trace/dot mapping incomplete: %+v", sess.Mapping)
	}

	// 5. Replay the whole trace and show the display window.
	sess.Replay.FastForward(st.Len())
	fmt.Println("\n== display window (all instructions completed: '+') ==")
	fmt.Print(ascii.RenderGraph(sess.Graph, sess.Layout, sess.Fills(), ascii.DefaultOptions()))

	fmt.Println("\n== where the time went ==")
	fmt.Print(ascii.RenderCostly(core.TopCostly(st, 5), ascii.DefaultOptions()))

	// 6. A tooltip, as the hover would show it.
	top := core.TopCostly(st, 1)
	if len(top) == 1 {
		fmt.Println("\n== tooltip of the costliest instruction ==")
		fmt.Println(core.Tooltip(st, top[0].PC))
	}

	// Sanity: the plan has the shape the paper's Figure 1 shows.
	listing := plan.String()
	for _, want := range []string{"sql.bind", "algebra.thetaselect", "algebra.leftjoin"} {
		if !strings.Contains(listing, want) {
			log.Fatalf("plan missing %s", want)
		}
	}
	fmt.Println("\nquickstart OK")
}
