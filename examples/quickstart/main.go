// Quickstart: the full Stethoscope pipeline in-process, on the paper's
// own example query (Figure 1: "select l_tax from lineitem where
// l_partkey=1"): generate TPC-H data, execute the query under the
// profiler, open the analysis session, and print the colored plan with
// the costly-instruction report.
package main

import (
	"context"
	"fmt"
	"log"

	"stethoscope"
)

func main() {
	db, err := stethoscope.Open(stethoscope.WithScaleFactor(0.005), stethoscope.WithSeed(42))
	if err != nil {
		log.Fatal(err)
	}
	res, err := db.Exec(context.Background(), "select l_tax from lineitem where l_partkey=1")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("== MAL plan (paper Figure 1) ==")
	fmt.Print(res.PlanString())
	fmt.Printf("\nquery returned %d rows; trace has %d events\n", res.RowCount(), res.TraceLen())

	a, err := stethoscope.Analyze(res)
	if err != nil {
		log.Fatal(err)
	}
	a.Replay().FastForward(res.TraceLen())
	fmt.Println("\n== display window (all instructions completed: '+') ==")
	fmt.Print(a.RenderReplay(stethoscope.DefaultRender()))

	fmt.Println("\n== where the time went ==")
	fmt.Print(stethoscope.RenderCostly(res.Costly(5), stethoscope.DefaultRender()))
	if top := res.Costly(1); len(top) == 1 {
		fmt.Println("\n== tooltip of the costliest instruction ==")
		fmt.Println(res.Tooltip(top[0].PC))
	}
	fmt.Println("\nquickstart OK")
}
