// TPC-H workload sweep: runs the adapted TPC-H query set (the "long
// running TPC-H queries" of the paper's demo) through the full pipeline
// and prints, per query, the plan size, the execution profile, the
// costliest instruction, the module breakdown and the thread Gantt — the
// report a performance engineer would pull from Stethoscope.
package main

import (
	"fmt"
	"log"
	"time"

	"stethoscope/internal/algebra"
	"stethoscope/internal/ascii"
	"stethoscope/internal/compiler"
	"stethoscope/internal/core"
	"stethoscope/internal/engine"
	"stethoscope/internal/optimizer"
	"stethoscope/internal/profiler"
	"stethoscope/internal/sql"
	"stethoscope/internal/storage"
	"stethoscope/internal/tpch"
	"stethoscope/internal/trace"
)

func main() {
	cat := storage.NewCatalog()
	if err := tpch.Load(cat, tpch.Config{SF: 0.01, Seed: 2012}); err != nil {
		log.Fatal(err)
	}
	eng := engine.New(cat)
	opt := ascii.Options{Width: 100}

	for _, q := range tpch.Queries() {
		fmt.Printf("\n================ %s — %s ================\n", q.ID, q.Name)
		if q.Adapted != "" {
			fmt.Printf("(adapted: %s)\n", q.Adapted)
		}

		stmt, err := sql.Parse(q.SQL)
		if err != nil {
			log.Fatalf("%s: %v", q.ID, err)
		}
		tree, err := algebra.Bind(stmt, cat)
		if err != nil {
			log.Fatalf("%s: %v", q.ID, err)
		}
		plan, err := compiler.Compile(tree, stmt.Text, compiler.Options{Partitions: 8})
		if err != nil {
			log.Fatalf("%s: %v", q.ID, err)
		}
		plan, stats, err := optimizer.Default().Run(plan)
		if err != nil {
			log.Fatalf("%s: %v", q.ID, err)
		}

		sink := &profiler.SliceSink{}
		start := time.Now()
		res, err := eng.Run(plan, engine.Options{Workers: 4, Profiler: profiler.New(sink)})
		if err != nil {
			log.Fatalf("%s: %v", q.ID, err)
		}
		elapsed := time.Since(start)
		st := trace.FromEvents(sink.Events())

		fmt.Printf("plan: %d instructions (%s); result: %d rows in %v\n",
			len(plan.Instrs), stats, res.Rows(), elapsed.Round(time.Microsecond))

		top := core.TopCostly(st, 3)
		fmt.Println("costliest instructions:")
		fmt.Print(ascii.RenderCostly(top, opt))

		u := core.Utilize(st)
		fmt.Printf("parallelism %.2f over %d threads\n", u.Parallelism, u.Threads)
		fmt.Print(ascii.RenderGantt(core.ThreadTimeline(st), opt))

		mods := core.ModuleBreakdown(st)
		if len(mods) > 0 {
			fmt.Printf("dominant module: %s (%.0f%% of %dus busy time)\n",
				mods[0].Module, mods[0].Share*100, busyTotal(mods))
		}
	}
	fmt.Println("\ntpch workload OK")
}

func busyTotal(mods []core.ModuleStat) int64 {
	var t int64
	for _, m := range mods {
		t += m.BusyUs
	}
	return t
}
