// TPC-H workload sweep: runs the adapted TPC-H query set (the "long
// running TPC-H queries" of the paper's demo) through the full pipeline
// and prints, per query, the plan size, the execution profile, the
// costliest instruction, the module breakdown and the thread Gantt — the
// report a performance engineer would pull from Stethoscope.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"stethoscope"
)

func main() {
	db, err := stethoscope.Open(stethoscope.WithScaleFactor(0.01), stethoscope.WithSeed(2012),
		stethoscope.WithPartitions(8), stethoscope.WithWorkers(4))
	if err != nil {
		log.Fatal(err)
	}
	opt := stethoscope.RenderOptions{Width: 100}

	for _, q := range stethoscope.Queries() {
		fmt.Printf("\n================ %s — %s ================\n", q.ID, q.Name)
		if q.Adapted != "" {
			fmt.Printf("(adapted: %s)\n", q.Adapted)
		}

		res, err := db.Exec(context.Background(), q.SQL)
		if err != nil {
			log.Fatalf("%s: %v", q.ID, err)
		}
		fmt.Printf("plan: %d instructions (%s); result: %d rows in %v\n",
			res.Stats.Instructions, res.Stats.Optimizer, res.RowCount(),
			res.Stats.Elapsed.Round(time.Microsecond))

		fmt.Println("costliest instructions:")
		fmt.Print(stethoscope.RenderCostly(res.Costly(3), opt))

		u := res.Utilization()
		fmt.Printf("parallelism %.2f over %d threads\n", u.Parallelism, u.Threads)
		fmt.Print(stethoscope.RenderGantt(res.ThreadTimeline(), opt))

		mods := res.ModuleBreakdown()
		if len(mods) > 0 {
			fmt.Printf("dominant module: %s (%.0f%% of %dus busy time)\n",
				mods[0].Module, mods[0].Share*100, busyTotal(mods))
		}
	}
	fmt.Println("\ntpch workload OK")
}

func busyTotal(mods []stethoscope.ModuleStat) int64 {
	var t int64
	for _, m := range mods {
		t += m.BusyUs
	}
	return t
}
