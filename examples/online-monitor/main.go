// Online monitor: the paper's online demo. An mserver runs in-process;
// the textual Stethoscope listens on UDP; the query's dot file and its
// execution trace stream live over the wire while the query runs; the
// monitor builds the session from the streamed content and applies the
// §4.2.1 live coloring.
package main

import (
	"fmt"
	"log"
	"time"

	"stethoscope/internal/ascii"
	"stethoscope/internal/core"
	"stethoscope/internal/server"
	"stethoscope/internal/storage"
	"stethoscope/internal/tpch"
)

func main() {
	// Boot the server.
	cat := storage.NewCatalog()
	if err := tpch.Load(cat, tpch.Config{SF: 0.005, Seed: 7}); err != nil {
		log.Fatal(err)
	}
	srv := server.New("demo-mserver", cat)
	if err := srv.Listen("127.0.0.1:0"); err != nil {
		log.Fatal(err)
	}
	defer srv.Close()
	fmt.Printf("mserver on %s\n", srv.Addr())

	// Boot the textual Stethoscope (UDP listener + sampling buffer).
	ts, err := core.StartTextual("127.0.0.1:0", 512)
	if err != nil {
		log.Fatal(err)
	}
	defer ts.Close()
	fmt.Printf("textual stethoscope on %s\n", ts.Addr())

	// Connect as a client, point the profiler stream at the stethoscope,
	// and run a parallel query.
	c, err := server.DialServer(srv.Addr())
	if err != nil {
		log.Fatal(err)
	}
	defer c.Close()
	for _, cmd := range []string{
		"TRACE " + ts.Addr(),
		"SET partitions 8",
		"SET workers 4",
	} {
		if _, _, err := c.Command(cmd); err != nil {
			log.Fatal(err)
		}
	}
	const query = "select l_orderkey, l_extendedprice from lineitem where l_quantity > 30"
	fmt.Printf("running: %s\n", query)
	if _, rows, err := c.Command("QUERY " + query); err != nil {
		log.Fatal(err)
	} else {
		fmt.Printf("result rows: %d\n", len(rows)-1)
	}

	// Wait for the dot file and the trace to arrive.
	var addr string
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) && addr == "" {
		for _, a := range ts.Servers() {
			ss, _ := ts.Server(a)
			if _, err := ss.Graph(); err == nil && len(ss.Events()) > 0 {
				addr = a
			}
		}
		time.Sleep(5 * time.Millisecond)
	}
	if addr == "" {
		log.Fatal("stream never completed")
	}
	time.Sleep(100 * time.Millisecond) // drain stragglers
	ss, _ := ts.Server(addr)
	dotLines, events := ss.Counts()
	fmt.Printf("received from %s (%q): %d dot lines, %d events\n",
		addr, ss.ServerName(), dotLines, events)

	// Live coloring over the sampling buffer (§4.2.1).
	live := ss.LiveColoring()
	fmt.Printf("live pair-elision flags %d long-running instructions\n", len(live))

	// Build the full session and report.
	sess, err := ts.OpenOnlineSession(addr, core.SessionOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n== streamed plan (%d nodes) ==\n", len(sess.Graph.Nodes))
	fills := core.PairElision(sess.Trace.Events()).Fills()
	fmt.Print(ascii.RenderGraph(sess.Graph, sess.Layout, fills, ascii.Options{Width: 120}))

	fmt.Println("\n== utilization ==")
	fmt.Print(ascii.RenderUtilization(core.Utilize(sess.Trace), ascii.DefaultOptions()))

	fmt.Println("\nonline monitor OK")
}
