// Online monitor: the paper's online demo. An mserver runs in-process;
// the monitor (textual Stethoscope) listens on UDP; the query's dot file
// and its execution trace stream live over the wire while the query
// runs; the monitor builds the session from the streamed content and
// applies the §4.2.1 live coloring.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"stethoscope"
)

func main() {
	ctx := context.Background()

	// Boot the server.
	db, err := stethoscope.Open(stethoscope.WithScaleFactor(0.005), stethoscope.WithSeed(7))
	if err != nil {
		log.Fatal(err)
	}
	srv, err := db.Serve(ctx, "demo-mserver", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Close()
	fmt.Printf("mserver on %s\n", srv.Addr())

	// Boot the monitor (UDP listener + sampling buffer).
	mon, err := stethoscope.Attach(ctx, "127.0.0.1:0", stethoscope.WithRingCapacity(512))
	if err != nil {
		log.Fatal(err)
	}
	defer mon.Close()
	fmt.Printf("monitor on %s\n", mon.Addr())

	// Connect as a client, point the profiler stream at the monitor, and
	// run a parallel query.
	c, err := stethoscope.Dial(srv.Addr())
	if err != nil {
		log.Fatal(err)
	}
	defer c.Close()
	if err := c.TraceTo(mon.Addr()); err != nil {
		log.Fatal(err)
	}
	if err := c.Configure(8, 4); err != nil {
		log.Fatal(err)
	}
	const query = "select l_orderkey, l_extendedprice from lineitem where l_quantity > 30"
	fmt.Printf("running: %s\n", query)
	rows, err := c.Query(query)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("result rows: %d\n", len(rows)-1)

	// Wait for the dot file and the trace to arrive.
	waitCtx, cancel := context.WithTimeout(ctx, 10*time.Second)
	defer cancel()
	source, err := mon.WaitComplete(waitCtx)
	if err != nil {
		log.Fatal(err)
	}
	dotLines, events, _ := mon.SourceCounts(source)
	fmt.Printf("received from %s (%q): %d dot lines, %d events\n",
		source, mon.SourceName(source), dotLines, events)

	// Live coloring over the sampling buffer (§4.2.1).
	live := mon.LiveColoring(source)
	fmt.Printf("live pair-elision flags %d long-running instructions\n", len(live))

	// Build the full session and report.
	a, err := mon.Analyze(source)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n== streamed plan (%d nodes) ==\n", a.Nodes())
	fmt.Print(a.RenderGraph(stethoscope.RenderOptions{Width: 120}))

	fmt.Println("\n== utilization ==")
	fmt.Print(stethoscope.RenderUtilization(a.Utilization(), stethoscope.DefaultRender()))

	fmt.Println("\nonline monitor OK")
}
