//go:build race

package stethoscope_test

// raceEnabled reports that the race detector instruments this build;
// timing-ratio assertions are skipped (instrumentation distorts the
// sequential/parallel balance) while correctness checks still run.
const raceEnabled = true
