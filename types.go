package stethoscope

import (
	"stethoscope/internal/ascii"
	"stethoscope/internal/core"
	"stethoscope/internal/engine"
	"stethoscope/internal/metrics"
	"stethoscope/internal/optimizer"
	"stethoscope/internal/profiler"
	"stethoscope/internal/tpch"
)

// This file re-exports the leaf data types of the pipeline so that
// facade users never have to name an internal package. The aliases are
// intentional: the values flowing out of DB/Result/Analysis/Monitor are
// the very structs the internal packages produce, and an alias keeps
// them interchangeable with the internal code without a copy layer.

// Event is one profiler record: the start or done half of an executed
// MAL instruction, with its timing and resource accounting.
type Event = profiler.Event

// Event lifecycle states (Event.State).
const (
	StateStart = profiler.StateStart
	StateDone  = profiler.StateDone
)

// Color is a node execution-state color; Coloring maps program counters
// to colors.
type (
	Color    = core.Color
	Coloring = core.Coloring
)

// The paper's palette: RED for running/long-running, GREEN for completed.
const (
	ColorNone  = core.ColorNone
	ColorRed   = core.ColorRed
	ColorGreen = core.ColorGreen
)

// Analysis result records, produced by Result and Analysis accessors.
type (
	// CostlyInstr is one entry of the costly-instruction report.
	CostlyInstr = core.CostlyInstr
	// Utilization summarizes multi-core usage of a run.
	Utilization = core.Utilization
	// Cluster is one birds-eye bucket of the trace.
	Cluster = core.Cluster
	// ModuleStat is one row of the per-MAL-module time breakdown.
	ModuleStat = core.ModuleStat
	// Segment is one busy interval of a thread timeline.
	Segment = core.Segment
	// MemPoint is one sample of the memory-over-time curve.
	MemPoint = core.MemPoint
	// GradientStop is one legend entry of the gradient coloring.
	GradientStop = core.GradientStop
	// Replay steps a trace through the glyph space (fast-forward, rewind,
	// pause, seek).
	Replay = core.Replay
	// OptimizerStats summarizes what the optimizer pipeline changed.
	OptimizerStats = optimizer.Stats
)

// Observability types, produced by DB.Metrics and DB.Progress.
type (
	// Metric is one named sample of the metrics registry: a counter or
	// gauge value, or a histogram's cumulative buckets.
	Metric = metrics.Sample
	// MetricsSnapshot is a point-in-time view of the whole registry,
	// sorted by name (Get/Value helpers included).
	MetricsSnapshot = metrics.Snapshot
	// MetricBucket is one cumulative histogram bucket of a Metric.
	MetricBucket = metrics.Bucket
	// QueryProgress is the live progress of one in-flight query: rows
	// scanned / total driver rows and morsels done / total from the
	// morsel cursor, instructions completed / total from the scheduler.
	QueryProgress = engine.QueryProgress
)

// Metric kinds (Metric.Kind).
const (
	MetricCounter   = metrics.KindCounter
	MetricGauge     = metrics.KindGauge
	MetricHistogram = metrics.KindHistogram
)

// Query is one entry of the bundled TPC-H workload.
type Query = tpch.Query

// Queries returns the adapted TPC-H workload, ordered by query number.
func Queries() []Query { return tpch.Queries() }

// QueryByID looks a workload query up by its ID ("Q1").
func QueryByID(id string) (Query, bool) { return tpch.QueryByID(id) }

// SequentialAnomaly reports whether a utilization profile shows the
// paper's headline anomaly: a plan expected on expectedThreads executing
// (nearly) sequentially.
func SequentialAnomaly(u Utilization, expectedThreads int) bool {
	return core.SequentialAnomaly(u, expectedThreads)
}

// RenderOptions controls terminal rendering (width, ANSI color).
type RenderOptions = ascii.Options

// DefaultRender renders 100 columns wide without color.
func DefaultRender() RenderOptions { return ascii.DefaultOptions() }

// RenderCostly renders the costly-instruction report for the terminal.
func RenderCostly(items []CostlyInstr, o RenderOptions) string {
	return ascii.RenderCostly(items, o)
}

// RenderUtilization renders a multi-core utilization summary.
func RenderUtilization(u Utilization, o RenderOptions) string {
	return ascii.RenderUtilization(u, o)
}

// RenderBirdsEye renders the birds-eye clustering of a trace.
func RenderBirdsEye(clusters []Cluster, o RenderOptions) string {
	return ascii.RenderBirdsEye(clusters, o)
}

// RenderGantt renders the per-thread execution timeline.
func RenderGantt(timeline map[int][]Segment, o RenderOptions) string {
	return ascii.RenderGantt(timeline, o)
}

// RenderMemoryTimeline renders the memory-over-time curve.
func RenderMemoryTimeline(pts []MemPoint, o RenderOptions) string {
	return ascii.RenderMemoryTimeline(pts, o)
}
