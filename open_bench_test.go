// Durable-storage experiment: cold-start cost of a persisted dataset
// versus regenerating the substrate. Both benchmarks open a database at
// the same scale factor and run one query so "open" means
// query-answering, not just constructed; the persisted side reads the
// manifest plus the one column the query scans, the generated side
// synthesizes every table. Recorded in CI's BENCH_<sha>.json via the
// bench-record sweep.
package stethoscope

import (
	"context"
	"path/filepath"
	"testing"
)

// openBenchSF is the scale factor both open benchmarks share; 0.1 is
// large enough (~600k lineitem rows) that generation dominates noise.
const openBenchSF = 0.1

const openBenchQuery = "select count(*) as n from lineitem"

// BenchmarkOpenGenerate is the baseline every Open used to pay:
// regenerate the full TPC-H substrate, then answer one query.
func BenchmarkOpenGenerate(b *testing.B) {
	ctx := context.Background()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		db, err := Open(WithScaleFactor(openBenchSF))
		if err != nil {
			b.Fatal(err)
		}
		if _, err := db.Exec(ctx, openBenchQuery); err != nil {
			b.Fatal(err)
		}
		db.Close()
	}
}

// BenchmarkOpenPersisted opens the same dataset from a persisted
// snapshot: manifest only, then the queried column streams off disk.
// The recorded claim is a >=3x faster cold open than regeneration.
func BenchmarkOpenPersisted(b *testing.B) {
	dir := filepath.Join(b.TempDir(), "ds")
	db, err := Open(WithScaleFactor(openBenchSF))
	if err != nil {
		b.Fatal(err)
	}
	if err := db.Persist(dir); err != nil {
		b.Fatal(err)
	}
	db.Close()
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pdb, err := OpenPath(dir)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := pdb.Exec(ctx, openBenchQuery); err != nil {
			b.Fatal(err)
		}
		pdb.Close()
	}
}
