// Experiment harness: one benchmark and one assertion test per paper
// figure and claim. The paper is a demo paper without numbered tables,
// so the experiment set (F1-F4 for the figures, E5-E11 for the checkable
// claims and demo features) is defined in DESIGN.md §4.
package stethoscope

import (
	"context"
	"fmt"
	"runtime"
	"runtime/debug"
	"strings"
	"sync"
	"testing"
	"time"

	"stethoscope/internal/algebra"
	"stethoscope/internal/compiler"
	"stethoscope/internal/core"
	"stethoscope/internal/dot"
	"stethoscope/internal/engine"
	"stethoscope/internal/layout"
	"stethoscope/internal/mal"
	"stethoscope/internal/netproto"
	"stethoscope/internal/optimizer"
	"stethoscope/internal/profiler"
	"stethoscope/internal/sql"
	"stethoscope/internal/storage"
	"stethoscope/internal/svg"
	"stethoscope/internal/tpch"
	"stethoscope/internal/trace"
	"stethoscope/internal/tracestore"
	"stethoscope/internal/zvtm"
)

// paperQuery is the exact query of the paper's Figure 1.
const paperQuery = "select l_tax from lineitem where l_partkey=1"

// largeQuery at 64 partitions produces the >1000-node graph of Figure 2.
const largeQuery = `select l_orderkey, l_partkey, l_suppkey, l_quantity, l_extendedprice, l_discount, l_tax, l_shipdate
	from lineitem where l_quantity > 10 and l_discount < 0.05`

var benchCat = func() *storage.Catalog {
	cat := storage.NewCatalog()
	if err := tpch.Load(cat, tpch.Config{SF: 0.005, Seed: 42}); err != nil {
		panic(err)
	}
	return cat
}()

func mustCompile(tb testing.TB, query string, partitions int) *mal.Plan {
	tb.Helper()
	stmt, err := sql.Parse(query)
	if err != nil {
		tb.Fatal(err)
	}
	tree, err := algebra.Bind(stmt, benchCat)
	if err != nil {
		tb.Fatal(err)
	}
	plan, err := compiler.Compile(tree, stmt.Text, compiler.Options{Partitions: partitions})
	if err != nil {
		tb.Fatal(err)
	}
	return plan
}

func mustTrace(tb testing.TB, plan *mal.Plan, workers int) *trace.Store {
	tb.Helper()
	sink := &profiler.SliceSink{}
	prof := profiler.New(sink)
	if _, err := engine.New(benchCat).Run(plan, engine.Options{Workers: workers, Profiler: prof}); err != nil {
		tb.Fatal(err)
	}
	return trace.FromEvents(sink.Events())
}

// --- F1: Figure 1, the MAL plan of the paper's example query ---------

func TestF1PlanShape(t *testing.T) {
	plan := mustCompile(t, paperQuery, 1)
	listing := plan.String()
	// The plan must carry the query and lower to the bind/select/project
	// chain of the figure.
	for _, want := range []string{
		"# " + paperQuery,
		`sql.bind("sys", "lineitem", "l_partkey", 0)`,
		`algebra.thetaselect(`,
		`sql.bind("sys", "lineitem", "l_tax", 0)`,
		`algebra.leftjoin(`,
		"sql.resultSet",
	} {
		if !strings.Contains(listing, want) {
			t.Errorf("F1 plan missing %q:\n%s", want, listing)
		}
	}
	// And execute correctly.
	res, err := engine.New(benchCat).Run(plan, engine.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows() == 0 {
		t.Error("F1 query returned no rows")
	}
}

func BenchmarkF1PlanGeneration(b *testing.B) {
	for i := 0; i < b.N; i++ {
		stmt, _ := sql.Parse(paperQuery)
		tree, _ := algebra.Bind(stmt, benchCat)
		if _, err := compiler.Compile(tree, stmt.Text, compiler.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

// --- F2: Figure 2 + claim #5, graphs beyond 1000 nodes ----------------

func TestF2Over1000Nodes(t *testing.T) {
	plan := mustCompile(t, largeQuery, 64)
	g := dot.Export(plan)
	if len(g.Nodes) <= 1000 {
		t.Fatalf("F2 graph has %d nodes, want > 1000", len(g.Nodes))
	}
	lay, err := layout.Compute(g, layout.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(lay.Positions) != len(g.Nodes) {
		t.Fatalf("laid out %d of %d nodes", len(lay.Positions), len(g.Nodes))
	}
	rendered, err := svg.RenderString(g, lay, nil, svg.DefaultStyle())
	if err != nil {
		t.Fatal(err)
	}
	doc, err := svg.ParseString(rendered)
	if err != nil {
		t.Fatal(err)
	}
	vs, err := zvtm.FromSVG("f2", doc)
	if err != nil {
		t.Fatal(err)
	}
	if vs.CountKind(zvtm.ShapeGlyph) != len(g.Nodes) {
		t.Errorf("glyphs = %d, want %d", vs.CountKind(zvtm.ShapeGlyph), len(g.Nodes))
	}
}

// BenchmarkF2LargeGraph measures the full pipeline (compile → dot →
// layout → svg → glyphs) at the >1000-node scale.
func BenchmarkF2LargeGraph(b *testing.B) {
	plan := mustCompile(b, largeQuery, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g := dot.Export(plan)
		lay, err := layout.Compute(g, layout.DefaultOptions())
		if err != nil {
			b.Fatal(err)
		}
		if _, err := svg.RenderString(g, lay, nil, svg.DefaultStyle()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkF2LayoutScaling sweeps the node count to back the interactive-
// scale claim (ablation: layout cost vs graph size).
func BenchmarkF2LayoutScaling(b *testing.B) {
	for _, parts := range []int{1, 8, 32, 64} {
		plan := mustCompile(b, largeQuery, parts)
		g := dot.Export(plan)
		b.Run(fmt.Sprintf("nodes=%d", len(g.Nodes)), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := layout.Compute(g, layout.DefaultOptions()); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- F3: Figure 3, the execution trace -------------------------------

func TestF3TraceRoundTrip(t *testing.T) {
	plan := mustCompile(t, paperQuery, 1)
	var sb strings.Builder
	sink := profiler.NewWriterSink(&sb)
	prof := profiler.New(sink)
	if _, err := engine.New(benchCat).Run(plan, engine.Options{Profiler: prof}); err != nil {
		t.Fatal(err)
	}
	if err := sink.Flush(); err != nil {
		t.Fatal(err)
	}
	st, err := trace.LoadString(sb.String())
	if err != nil {
		t.Fatal(err)
	}
	// Two events (start + done) per instruction, per §3.3.
	if st.Len() != 2*len(plan.Instrs) {
		t.Fatalf("trace has %d events, want %d", st.Len(), 2*len(plan.Instrs))
	}
	// The pc ↔ node mapping is complete with matching labels.
	m := trace.MapToGraph(st, dot.Export(plan))
	if !m.Complete() {
		t.Fatalf("mapping incomplete: %+v", m)
	}
}

func BenchmarkF3TraceGeneration(b *testing.B) {
	plan := mustCompile(b, paperQuery, 1)
	eng := engine.New(benchCat)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sink := &profiler.SliceSink{}
		if _, err := eng.Run(plan, engine.Options{Profiler: profiler.New(sink)}); err != nil {
			b.Fatal(err)
		}
	}
}

// --- F4: Figure 4, the display window --------------------------------

func TestF4ColoredRender(t *testing.T) {
	plan := mustCompile(t, paperQuery, 1)
	st := mustTrace(t, plan, 1)
	sess, err := core.NewSession(dot.Export(plan), st, core.SessionOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// Replay to a midpoint: some nodes done (green), the one in flight
	// red.
	if err := sess.Replay.SeekTo(st.Len()/2 + 1); err != nil {
		t.Fatal(err)
	}
	out, err := sess.RenderSVG()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, string(core.ColorGreen)) {
		t.Error("F4 render missing done (green) state")
	}
	if !strings.Contains(out, string(core.ColorRed)) {
		t.Error("F4 render missing running (red) state")
	}
}

func BenchmarkF4DisplayRender(b *testing.B) {
	plan := mustCompile(b, paperQuery, 1)
	st := mustTrace(b, plan, 1)
	sess, err := core.NewSession(dot.Export(plan), st, core.SessionOptions{})
	if err != nil {
		b.Fatal(err)
	}
	sess.Replay.FastForward(st.Len())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sess.RenderSVG(); err != nil {
			b.Fatal(err)
		}
	}
}

// --- E5: §4.2.1 pair-elision worked example ---------------------------
// (Correctness is asserted in internal/core's TestE5PairElisionPaperExample;
// here we measure the algorithm at buffer scale.)

func BenchmarkE5Coloring(b *testing.B) {
	// A realistic mixed buffer: mostly fast pairs with occasional
	// long-runners.
	var buf []profiler.Event
	for i := 0; i < 2048; i++ {
		pc := i % 512
		buf = append(buf, profiler.Event{Seq: int64(2 * i), State: profiler.StateStart, PC: pc})
		if i%17 != 0 {
			buf = append(buf, profiler.Event{Seq: int64(2*i + 1), State: profiler.StateDone, PC: pc})
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		core.PairElision(buf)
	}
}

// --- E6: the 150 ms render-queue dispatch ceiling ---------------------

func TestE6DispatchDelayCeiling(t *testing.T) {
	vs := zvtm.NewVirtualSpace("e6")
	for i := 0; i < 64; i++ {
		vs.Add(&zvtm.Glyph{ID: fmt.Sprintf("shape:n%d", i), Kind: zvtm.ShapeGlyph, NodeID: fmt.Sprintf("n%d", i), W: 10, H: 10})
	}
	q := zvtm.NewRenderQueue(vs, 0) // paper default: 150 ms
	t0 := time.Unix(0, 0)
	for i := 0; i < 64; i++ {
		q.Enqueue(fmt.Sprintf("n%d", i), "#e03131", t0)
	}
	q.Flush(t0.Add(time.Minute))
	delays := q.InterRenderDelays()
	if len(delays) != 63 {
		t.Fatalf("dispatches = %d", len(delays)+1)
	}
	for _, d := range delays {
		if d > zvtm.DefaultDispatchDelay {
			t.Fatalf("inter-render delay %v exceeds the paper's 150ms ceiling", d)
		}
	}
}

func BenchmarkE6RenderQueue(b *testing.B) {
	vs := zvtm.NewVirtualSpace("e6")
	vs.Add(&zvtm.Glyph{ID: "shape:n0", Kind: zvtm.ShapeGlyph, NodeID: "n0", W: 10, H: 10})
	q := zvtm.NewRenderQueue(vs, time.Microsecond)
	t0 := time.Unix(0, 0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q.Enqueue("n0", "#2f9e44", t0.Add(time.Duration(i)))
		q.Flush(t0.Add(time.Duration(i) + time.Millisecond))
	}
}

// --- E7: multi-core utilization and the sequential anomaly ------------

func TestE7SequentialAnomaly(t *testing.T) {
	// Per-instruction work must be large enough that the worker pool is
	// observably busy; use a heavier catalog than the other experiments.
	cat := storage.NewCatalog()
	if err := tpch.Load(cat, tpch.Config{SF: 0.05, Seed: 42}); err != nil {
		t.Fatal(err)
	}
	stmt, err := sql.Parse(largeQuery)
	if err != nil {
		t.Fatal(err)
	}
	tree, err := algebra.Bind(stmt, cat)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := compiler.Compile(tree, stmt.Text, compiler.Options{Partitions: 16})
	if err != nil {
		t.Fatal(err)
	}
	runOn := func(workers int) core.Utilization {
		sink := &profiler.SliceSink{}
		if _, err := engine.New(cat).Run(plan, engine.Options{Workers: workers, Profiler: profiler.New(sink)}); err != nil {
			t.Fatal(err)
		}
		return core.Utilize(trace.FromEvents(sink.Events()))
	}
	par := runOn(8)
	seq := runOn(1)
	if seq.Threads != 1 {
		t.Fatalf("sequential run used %d threads", seq.Threads)
	}
	if par.Threads < 2 {
		t.Fatalf("parallel run used %d threads", par.Threads)
	}
	if !core.SequentialAnomaly(seq, 8) {
		t.Error("sequential anomaly not flagged")
	}
	if core.SequentialAnomaly(par, 8) {
		t.Error("parallel run falsely flagged")
	}
}

func BenchmarkE7Utilization(b *testing.B) {
	plan := mustCompile(b, largeQuery, 16)
	st := mustTrace(b, plan, 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		core.Utilize(st)
	}
}

// e7Cat is the heavier catalog used by the worker sweep: per-instruction
// work must exceed the scheduler's wakeup latency for parallel speedup to
// be observable.
var e7Cat = func() func() *storage.Catalog {
	var cat *storage.Catalog
	return func() *storage.Catalog {
		if cat == nil {
			cat = storage.NewCatalog()
			if err := tpch.Load(cat, tpch.Config{SF: 0.05, Seed: 42}); err != nil {
				panic(err)
			}
		}
		return cat
	}
}()

// BenchmarkE7WorkerSweep is the ablation for the dataflow scheduler:
// execution wall time at increasing worker counts on a 16-partition plan
// over ~300k lineitem rows.
func BenchmarkE7WorkerSweep(b *testing.B) {
	cat := e7Cat()
	stmt, _ := sql.Parse(largeQuery)
	tree, err := algebra.Bind(stmt, cat)
	if err != nil {
		b.Fatal(err)
	}
	plan, err := compiler.Compile(tree, stmt.Text, compiler.Options{Partitions: 16})
	if err != nil {
		b.Fatal(err)
	}
	eng := engine.New(cat)
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := eng.Run(plan, engine.Options{Workers: workers}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- E8: UDP streaming to the textual Stethoscope ---------------------

func BenchmarkE8UDPStream(b *testing.B) {
	received := make(chan struct{}, 1<<20)
	l, err := netproto.Listen("127.0.0.1:0", func(from string, m netproto.Msg) {
		received <- struct{}{}
	})
	if err != nil {
		b.Fatal(err)
	}
	defer l.Close()
	s, err := netproto.Dial(l.Addr())
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	e := profiler.Event{Seq: 1, State: profiler.StateDone, PC: 3, DurUs: 120,
		Stmt: `X_5:bat[:oid] := algebra.thetaselect(X_1, "=", 1);`}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Emit(e)
	}
	b.StopTimer()
	// Drain what arrived (UDP may drop; throughput is the send side).
	// Datagrams can still be in flight through the loopback stack when
	// StopTimer runs, so drain with a short idle deadline — a bare
	// default: would exit while packets are still arriving and
	// undercount receipts.
	for {
		select {
		case <-received:
		case <-time.After(50 * time.Millisecond):
			return
		}
	}
}

// BenchmarkE8UDPStreamBatched is the coalesced counterpart: events
// leave through a Batcher and multi-event EVTB datagrams — one syscall
// per batch instead of per event.
func BenchmarkE8UDPStreamBatched(b *testing.B) {
	received := make(chan struct{}, 1<<20)
	l, err := netproto.Listen("127.0.0.1:0", func(from string, m netproto.Msg) {
		received <- struct{}{}
	})
	if err != nil {
		b.Fatal(err)
	}
	defer l.Close()
	s, err := netproto.Dial(l.Addr())
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	batcher := profiler.NewBatcher(s, 64, 0)
	defer batcher.Close()
	e := profiler.Event{Seq: 1, State: profiler.StateDone, PC: 3, DurUs: 120,
		Stmt: `X_5:bat[:oid] := algebra.thetaselect(X_1, "=", 1);`}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		batcher.Emit(e)
	}
	batcher.Flush()
	b.StopTimer()
	for {
		select {
		case <-received:
		case <-time.After(50 * time.Millisecond):
			return
		}
	}
}

// --- E9: replay controls ----------------------------------------------

func BenchmarkE9Replay(b *testing.B) {
	plan := mustCompile(b, largeQuery, 8)
	st := mustTrace(b, plan, 4)
	sess, err := core.NewSession(dot.Export(plan), st, core.SessionOptions{DispatchDelay: time.Nanosecond})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sess.Replay.FastForward(st.Len())
		sess.Replay.Rewind(st.Len())
	}
}

// --- E10: threshold vs pair-elision coloring --------------------------

func TestE10ThresholdFindsWhatPairElisionFinds(t *testing.T) {
	// A trace where pc=9 runs 100x longer than everything else.
	var buf []profiler.Event
	clk := int64(0)
	seq := int64(0)
	emit := func(pc int, dur int64) {
		buf = append(buf, profiler.Event{Seq: seq, State: profiler.StateStart, PC: pc, ClkUs: clk})
		seq++
		clk += dur
		buf = append(buf, profiler.Event{Seq: seq, State: profiler.StateDone, PC: pc, ClkUs: clk, DurUs: dur})
		seq++
	}
	for pc := 0; pc < 9; pc++ {
		emit(pc, 10)
	}
	emit(9, 1000)
	th := core.Threshold(buf, 500)
	if len(th) != 1 || th[9] != core.ColorGreen {
		t.Errorf("threshold = %v", th)
	}
	// Pair-elision cannot flag it (the pair is adjacent) — that is the
	// documented trade-off between the two algorithms: pair-elision
	// detects blocking concurrency patterns, threshold detects absolute
	// cost.
	pe := core.PairElision(buf)
	if len(pe) != 0 {
		t.Errorf("pair elision on adjacent pairs = %v", pe)
	}
}

func BenchmarkE10Threshold(b *testing.B) {
	plan := mustCompile(b, largeQuery, 16)
	st := mustTrace(b, plan, 4)
	evs := st.Events()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		core.Threshold(evs, 100)
	}
}

// --- E11: future-work features: gradient coloring + plan pruning ------

func TestE11GradientAndPruning(t *testing.T) {
	plan := mustCompile(t, paperQuery, 1)
	st := mustTrace(t, plan, 1)
	coloring, stops := core.Gradient(st.Events())
	if len(coloring) == 0 || len(stops) == 0 {
		t.Fatal("gradient produced nothing")
	}
	// Legend is sorted by decreasing duration.
	for i := 1; i < len(stops); i++ {
		if stops[i].DurUs > stops[i-1].DurUs {
			t.Fatal("gradient legend out of order")
		}
	}

	// Pruning removes the administrative prologue/epilogue.
	pruned, remap := mal.Prune(plan)
	if len(pruned.Instrs) >= len(plan.Instrs) {
		t.Fatalf("pruning removed nothing: %d -> %d", len(plan.Instrs), len(pruned.Instrs))
	}
	for _, in := range pruned.Instrs {
		if in.Module == "querylog" {
			t.Error("admin instruction survived pruning")
		}
	}
	// Remapped trace events still land on valid pruned nodes.
	g := dot.Export(pruned)
	for oldPC, newPC := range remap {
		if _, ok := g.Node(dot.NodeID(newPC)); !ok {
			t.Errorf("remap %d->%d points at missing node", oldPC, newPC)
		}
	}
}

func BenchmarkE11Pruning(b *testing.B) {
	plan := mustCompile(b, largeQuery, 16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mal.Prune(plan)
	}
}

// --- Serving layer: plan cache and concurrent clients -----------------

// cacheBenchQuery is compile-heavy relative to its optimized plan: the
// 32 identical revenue expressions lower to 32 instruction chains
// per partition, which CSE then collapses to one. A cold Exec pays for
// compiling and optimizing all of them on every call; a cached Exec
// runs only the deduplicated plan. This is the workload shape a plan
// cache exists for (think prepared statements hammered by many clients).
const cacheBenchQuery = `select l_orderkey,
	l_extendedprice * (1 - l_discount) as r1,
	l_extendedprice * (1 - l_discount) as r2,
	l_extendedprice * (1 - l_discount) as r3,
	l_extendedprice * (1 - l_discount) as r4,
	l_extendedprice * (1 - l_discount) as r5,
	l_extendedprice * (1 - l_discount) as r6,
	l_extendedprice * (1 - l_discount) as r7,
	l_extendedprice * (1 - l_discount) as r8,
	l_extendedprice * (1 - l_discount) as r9,
	l_extendedprice * (1 - l_discount) as r10,
	l_extendedprice * (1 - l_discount) as r11,
	l_extendedprice * (1 - l_discount) as r12,
	l_extendedprice * (1 - l_discount) as r13,
	l_extendedprice * (1 - l_discount) as r14,
	l_extendedprice * (1 - l_discount) as r15,
	l_extendedprice * (1 - l_discount) as r16,
	l_extendedprice * (1 - l_discount) as r17,
	l_extendedprice * (1 - l_discount) as r18,
	l_extendedprice * (1 - l_discount) as r19,
	l_extendedprice * (1 - l_discount) as r20,
	l_extendedprice * (1 - l_discount) as r21,
	l_extendedprice * (1 - l_discount) as r22,
	l_extendedprice * (1 - l_discount) as r23,
	l_extendedprice * (1 - l_discount) as r24,
	l_extendedprice * (1 - l_discount) as r25,
	l_extendedprice * (1 - l_discount) as r26,
	l_extendedprice * (1 - l_discount) as r27,
	l_extendedprice * (1 - l_discount) as r28,
	l_extendedprice * (1 - l_discount) as r29,
	l_extendedprice * (1 - l_discount) as r30,
	l_extendedprice * (1 - l_discount) as r31,
	l_extendedprice * (1 - l_discount) as r32
	from lineitem where l_quantity > 48 and l_discount < 0.05`

// BenchmarkPlanCacheHit compares one Exec that compiles from scratch
// against one that serves the optimized plan from the shared cache,
// at 128-way mitosis: the cached variant skips the whole
// parse → bind → compile → optimize chain and must be at least
// ~5× faster. Both variants run with the durable query history
// enabled, pinning that the teed store sink does not erode the cache
// advantage.
func BenchmarkPlanCacheHit(b *testing.B) {
	ctx := context.Background()
	open := func(b *testing.B, opts ...Option) *DB {
		db, err := Open(append([]Option{
			WithScaleFactor(0.001),
			WithHistory(b.TempDir()),
		}, opts...)...)
		if err != nil {
			b.Fatal(err)
		}
		b.Cleanup(func() { db.Close() })
		return db
	}
	b.Run("cold", func(b *testing.B) {
		db := open(b, WithPlanCacheSize(0))
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := db.Exec(ctx, cacheBenchQuery, ExecPartitions(128)); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("cached", func(b *testing.B) {
		db := open(b)
		if _, err := db.Exec(ctx, cacheBenchQuery, ExecPartitions(128)); err != nil {
			b.Fatal(err) // warm the cache
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			res, err := db.Exec(ctx, cacheBenchQuery, ExecPartitions(128))
			if err != nil {
				b.Fatal(err)
			}
			if !res.Stats.CacheHit {
				b.Fatal("expected a plan-cache hit")
			}
		}
	})
}

// BenchmarkConcurrentExec measures serving throughput at increasing
// client parallelism: N goroutines drain a shared work queue of b.N
// queries against one DB (shared engine, shared plan cache). ns/op is
// wall time per completed query, so a multi-core runner should show
// clients=16 completing more queries per second than clients=1.
func BenchmarkConcurrentExec(b *testing.B) {
	db, err := Open(WithScaleFactor(0.005))
	if err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	queries := []string{
		paperQuery,
		"select l_orderkey from lineitem where l_quantity > 30",
		"select count(*) from lineitem",
	}
	for _, q := range queries {
		if _, err := db.Exec(ctx, q); err != nil {
			b.Fatal(err) // warm the plan cache
		}
	}
	for _, clients := range []int{1, 4, 16, 64} {
		b.Run(fmt.Sprintf("clients=%d", clients), func(b *testing.B) {
			jobs := make(chan int)
			errs := make(chan error, clients)
			var wg sync.WaitGroup
			for c := 0; c < clients; c++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for i := range jobs {
						if _, err := db.Exec(ctx, queries[i%len(queries)]); err != nil {
							select {
							case errs <- err:
							default:
							}
						}
					}
				}()
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				jobs <- i
			}
			close(jobs)
			wg.Wait()
			b.StopTimer()
			select {
			case err := <-errs:
				b.Fatal(err)
			default:
			}
		})
	}
}

// --- Query history: the durable trace store ---------------------------

// historyBenchEvents is a realistic 256-event batch (start/done pairs
// with MAL statement text) reused across append iterations.
var historyBenchEvents = func() []profiler.Event {
	evs := make([]profiler.Event, 0, 256)
	for i := 0; i < 128; i++ {
		stmt := fmt.Sprintf(`X_%d:bat[:oid] := algebra.thetaselect(X_1, "=", %d);`, i, i)
		evs = append(evs,
			profiler.Event{Seq: int64(2 * i), State: profiler.StateStart, PC: i, ClkUs: int64(10 * i), Stmt: stmt},
			profiler.Event{Seq: int64(2*i + 1), State: profiler.StateDone, PC: i, ClkUs: int64(10*i + 9),
				DurUs: 9, RSSKB: 128, Reads: 1000, Writes: 100, Stmt: stmt})
	}
	return evs
}()

// BenchmarkHistoryAppend measures the durable sink's batched hot path:
// events flow through a profiler.Batcher into tracestore events
// records, exactly as an Exec with WithHistory tees them. ns/op is per
// event; the store must sustain >= 100k events/sec (the companion
// assertion lives in internal/tracestore's TestAppendThroughput).
func BenchmarkHistoryAppend(b *testing.B) {
	st, err := tracestore.Open(tracestore.Options{Dir: b.TempDir()})
	if err != nil {
		b.Fatal(err)
	}
	defer st.Close()
	w, err := st.Begin(tracestore.RunMeta{SQL: cacheBenchQuery, Instructions: 128})
	if err != nil {
		b.Fatal(err)
	}
	batcher := profiler.NewBatcher(w, 256, 0)
	evs := historyBenchEvents
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		batcher.Emit(evs[i%len(evs)])
	}
	batcher.Flush()
	b.StopTimer()
	if err := w.Finish(tracestore.RunStats{}); err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "events/sec")
}

// BenchmarkHistoryTopN measures the aggregation layer over a populated
// store: ranking 256 recorded runs per iteration.
func BenchmarkHistoryTopN(b *testing.B) {
	st, err := tracestore.Open(tracestore.Options{Dir: b.TempDir()})
	if err != nil {
		b.Fatal(err)
	}
	defer st.Close()
	for i := 0; i < 256; i++ {
		w, err := st.Begin(tracestore.RunMeta{SQL: fmt.Sprintf("select %d", i), Instructions: 128})
		if err != nil {
			b.Fatal(err)
		}
		w.EmitBatch(historyBenchEvents)
		if err := w.Finish(tracestore.RunStats{ElapsedUs: int64((i * 7919) % 100_000)}); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if top := st.TopN(10); len(top) != 10 {
			b.Fatalf("TopN returned %d runs", len(top))
		}
	}
}

// --- Optimizer ablation ------------------------------------------------

func BenchmarkOptimizerPipeline(b *testing.B) {
	plan := mustCompile(b, largeQuery, 16)
	pipe := optimizer.Default()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := pipe.Run(plan); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMitosisSweep is the ablation for the partition count: plan
// size and compile cost per partitioning degree.
func BenchmarkMitosisSweep(b *testing.B) {
	for _, parts := range []int{1, 4, 16, 64} {
		b.Run(fmt.Sprintf("partitions=%d", parts), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				mustCompile(b, largeQuery, parts)
			}
		})
	}
}

// BenchmarkParallelScaling is the perf trajectory of the adaptive
// parallel execution path: one aggregate/group-by TPC-H pipeline
// executed fully sequentially, on the partitioned plan at 1/4/8
// dataflow workers, and under full auto tuning. Recorded by
// bench-record into BENCH_<sha>.json, so the sequential-vs-parallel gap
// is tracked commit over commit (cmd/benchjson -baseline prints the
// delta in the CI log).
func BenchmarkParallelScaling(b *testing.B) {
	const q = "select l_returnflag, count(*) as n, min(l_quantity) as mn, max(l_quantity) as mx " +
		"from lineitem where l_shipdate <= date '1998-09-02' group by l_returnflag order by l_returnflag"
	db, err := Open(WithScaleFactor(0.05), WithSeed(42),
		WithPartitions(Auto), WithWorkers(Auto))
	if err != nil {
		b.Fatal(err)
	}
	run := func(b *testing.B, opts ...ExecOption) {
		b.Helper()
		for i := 0; i < b.N; i++ {
			if _, err := db.Exec(context.Background(), q, opts...); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("sequential", func(b *testing.B) { run(b, ExecPartitions(1), ExecWorkers(1)) })
	for _, workers := range []int{1, 4, 8} {
		b.Run(fmt.Sprintf("partitions=8/workers=%d", workers), func(b *testing.B) {
			run(b, ExecPartitions(8), ExecWorkers(workers))
		})
	}
	b.Run("auto", func(b *testing.B) { run(b) })
}

// BenchmarkParallelJoin is the perf trajectory of join mitosis: the
// probe side (lineitem) sliced against a packed orders build,
// aggregated to keep result transfer out of the measurement. Recorded
// by bench-record and enforced by the CI bench gate from day one; the
// companion assertion is TestAutoParallelJoinSpeedup.
func BenchmarkParallelJoin(b *testing.B) {
	const q = "select o_orderpriority, count(*) as n from lineitem, orders " +
		"where l_orderkey = o_orderkey group by o_orderpriority order by o_orderpriority"
	db, err := Open(WithScaleFactor(0.05), WithSeed(42),
		WithPartitions(Auto), WithWorkers(Auto))
	if err != nil {
		b.Fatal(err)
	}
	run := func(b *testing.B, opts ...ExecOption) {
		b.Helper()
		for i := 0; i < b.N; i++ {
			if _, err := db.Exec(context.Background(), q, opts...); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("sequential", func(b *testing.B) { run(b, ExecPartitions(1), ExecWorkers(1)) })
	b.Run("auto", func(b *testing.B) { run(b) })
}

// --- Morsel-driven execution: bounded intermediates --------------------

// peakRSSQuery aggregates seven lineitem columns behind a barely
// selective filter: the static lowering materializes every partition's
// selection vectors and fetched aggregate inputs in the run context at
// once (they stay live until the run ends), while the morsel lowering
// holds only workers × morsel rows of fragment state plus the tiny
// per-morsel group partials.
const peakRSSQuery = "select l_shipmode, count(*) as n, sum(l_quantity) as q, sum(l_extendedprice) as ep, " +
	"sum(l_discount) as d, sum(l_tax) as tx, max(l_orderkey) as mo, min(l_partkey) as mp " +
	"from lineitem where l_quantity > 1 group by l_shipmode"

// peakDB lazily opens the SF 0.1 database the peak-memory measurements
// share (~600k lineitem rows — large enough that intermediate
// footprints dwarf allocator noise).
var peakDB = func() func(tb testing.TB) *DB {
	var (
		once sync.Once
		db   *DB
		err  error
	)
	return func(tb testing.TB) *DB {
		once.Do(func() {
			db, err = Open(WithScaleFactor(0.1), WithSeed(42))
		})
		if err != nil {
			tb.Fatal(err)
		}
		return db
	}
}()

// peakHeapDuring measures the peak heap while f runs, relative to the
// pre-run baseline (the loaded catalog). Dropping GOGC to 5 for the
// duration makes the collector reclaim garbage almost as soon as it is
// produced, so the sampled HeapAlloc tracks what the run actually
// RETAINS — the intermediates held live in the run context — rather
// than transient allocation churn, which both lowerings produce in
// similar volume.
func peakHeapDuring(f func() error) (peakBytes uint64, err error) {
	old := debug.SetGCPercent(5)
	defer debug.SetGCPercent(old)
	runtime.GC()
	var base runtime.MemStats
	runtime.ReadMemStats(&base)
	stop := make(chan struct{})
	done := make(chan uint64, 1)
	go func() {
		var max uint64
		var ms runtime.MemStats
		for {
			runtime.ReadMemStats(&ms)
			if ms.HeapAlloc > max {
				max = ms.HeapAlloc
			}
			select {
			case <-stop:
				done <- max
				return
			default:
				time.Sleep(200 * time.Microsecond)
			}
		}
	}()
	err = f()
	close(stop)
	peak := <-done
	if peak > base.HeapAlloc {
		peak -= base.HeapAlloc
	} else {
		peak = 0
	}
	return peak, err
}

// BenchmarkPeakRSS compares peak intermediate memory between the static
// mitosis lowering (64 partitions, every slice live until the run ends)
// and the morsel-driven lowering (16Ki-row morsels on 8 workers) on the
// same aggregate. The peak-bytes metric is recorded by bench-record and
// gated by cmd/benchjson alongside ns/op; the morsel variant must stay
// well under the static one (the companion assertion is
// TestMorselBoundsPeakMemory).
func BenchmarkPeakRSS(b *testing.B) {
	db := peakDB(b)
	ctx := context.Background()
	variants := []struct {
		name string
		opts []ExecOption
	}{
		{"static", []ExecOption{ExecPartitions(64), ExecWorkers(8)}},
		{"morsel", []ExecOption{ExecMorselRows(16384), ExecWorkers(8)}},
	}
	for _, v := range variants {
		b.Run(v.name, func(b *testing.B) {
			var peak uint64
			for i := 0; i < b.N; i++ {
				p, err := peakHeapDuring(func() error {
					_, err := db.Exec(ctx, peakRSSQuery, v.opts...)
					return err
				})
				if err != nil {
					b.Fatal(err)
				}
				if p > peak {
					peak = p
				}
			}
			b.ReportMetric(float64(peak), "peak-bytes")
		})
	}
}

// TestMorselBoundsPeakMemory is the assertion behind the morsel mode's
// bounded-intermediates claim: on the high-fanout aggregate, the morsel
// path's peak live heap must be at least 40% below the static path's.
// Forced-GC sampling keeps the measurement on the live set, but it is
// still a heap measurement — skipped under -short and -race, where
// instrumentation distorts it.
func TestMorselBoundsPeakMemory(t *testing.T) {
	if testing.Short() {
		t.Skip("heap measurement skipped in -short")
	}
	if raceEnabled {
		t.Skip("heap measurement skipped under -race")
	}
	db := peakDB(t)
	ctx := context.Background()
	measure := func(opts ...ExecOption) uint64 {
		t.Helper()
		best := ^uint64(0)
		for i := 0; i < 3; i++ {
			peak, err := peakHeapDuring(func() error {
				_, err := db.Exec(ctx, peakRSSQuery, opts...)
				return err
			})
			if err != nil {
				t.Fatal(err)
			}
			if peak < best {
				best = peak
			}
		}
		return best
	}
	static := measure(ExecPartitions(64), ExecWorkers(8))
	morsel := measure(ExecMorselRows(16384), ExecWorkers(8))
	t.Logf("peak live heap: static=%d bytes, morsel=%d bytes (%.0f%% reduction)",
		static, morsel, 100*(1-float64(morsel)/float64(static)))
	if float64(morsel) > 0.6*float64(static) {
		t.Errorf("morsel peak %d bytes is not >= 40%% below static peak %d bytes", morsel, static)
	}
}

// --- Observability: the always-on metrics tax --------------------------

// BenchmarkMetricsOverhead measures the cost of the always-on
// observability layer on the hottest serving path: a cached-plan Exec
// with the metrics registry wired (the shipping configuration, "on")
// versus the same DB with every metrics sink detached ("off"). The
// instrumentation is a handful of uncontended atomic adds per
// instruction, so the two variants must stay within a few percent of
// each other; both are recorded by bench-record and enforced by the CI
// bench gate so an accidentally hot metrics path shows up as a
// regression of "on" against its own baseline. The 128-partition plan
// keeps the measurement above the gate's noise floor and maximizes
// instructions per Exec — the worst case for per-instruction counters.
func BenchmarkMetricsOverhead(b *testing.B) {
	ctx := context.Background()
	run := func(b *testing.B, disable bool) {
		db, err := Open(WithScaleFactor(0.001))
		if err != nil {
			b.Fatal(err)
		}
		b.Cleanup(func() { db.Close() })
		if disable {
			db.disableMetrics()
		}
		if _, err := db.Exec(ctx, cacheBenchQuery, ExecPartitions(128)); err != nil {
			b.Fatal(err) // warm the plan cache
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			res, err := db.Exec(ctx, cacheBenchQuery, ExecPartitions(128))
			if err != nil {
				b.Fatal(err)
			}
			if !res.Stats.CacheHit {
				b.Fatal("expected a plan-cache hit")
			}
		}
	}
	b.Run("on", func(b *testing.B) { run(b, false) })
	b.Run("off", func(b *testing.B) { run(b, true) })
}

// BenchmarkParallelSort tracks sort mitosis: per-slice sorts with the
// fused top-k truncation feeding one mat.kmerge. The companion
// assertion is TestAutoParallelSortSpeedup.
func BenchmarkParallelSort(b *testing.B) {
	const q = "select l_orderkey, l_extendedprice from lineitem " +
		"order by l_extendedprice desc, l_orderkey limit 100"
	db, err := Open(WithScaleFactor(0.05), WithSeed(42),
		WithPartitions(Auto), WithWorkers(Auto))
	if err != nil {
		b.Fatal(err)
	}
	run := func(b *testing.B, opts ...ExecOption) {
		b.Helper()
		for i := 0; i < b.N; i++ {
			if _, err := db.Exec(context.Background(), q, opts...); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("sequential", func(b *testing.B) { run(b, ExecPartitions(1), ExecWorkers(1)) })
	b.Run("auto", func(b *testing.B) { run(b) })
}

// --- Shared-work serving ----------------------------------------------

// BenchmarkSharedWork measures the single-flight serving win at 64
// concurrent clients. identical: every client issues the same
// statement, so concurrent calls coalesce onto one execution.
// distinct: each client issues its own statement (all pre-warmed in
// the plan cache, so compilation cost is identical across the two
// cases) and nothing coalesces. ns/op is wall time per completed
// statement; identical should complete statements at a multiple of
// distinct's rate — the dedup is the only difference between the
// subbenchmarks.
func BenchmarkSharedWork(b *testing.B) {
	db, err := Open(WithScaleFactor(0.005))
	if err != nil {
		b.Fatal(err)
	}
	defer db.Close()
	ctx := context.Background()
	const clients = 64
	variants := make([]string, clients)
	for i := range variants {
		// 64 genuinely distinct statements of near-identical cost: the
		// predicate constant differs per client, so nothing coalesces.
		// The statement is deliberately heavy (join + aggregate): cheap
		// statements finish inside one scheduler quantum on small
		// machines and never overlap, which would benchmark the
		// scheduler, not the dedup.
		variants[i] = fmt.Sprintf("select o_orderpriority, count(*) as n from lineitem, orders "+
			"where l_orderkey = o_orderkey and l_partkey > %d group by o_orderpriority order by o_orderpriority", i)
	}
	for _, q := range variants {
		if _, err := db.Exec(ctx, q); err != nil {
			b.Fatal(err) // warm the plan cache for every variant
		}
	}
	run := func(b *testing.B, pick func(client int) string) {
		jobs := make(chan struct{})
		errs := make(chan error, clients)
		var wg sync.WaitGroup
		for c := 0; c < clients; c++ {
			wg.Add(1)
			go func(c int) {
				defer wg.Done()
				q := pick(c)
				for range jobs {
					if _, err := db.Exec(ctx, q); err != nil {
						select {
						case errs <- err:
						default:
						}
					}
				}
			}(c)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			jobs <- struct{}{}
		}
		close(jobs)
		wg.Wait()
		b.StopTimer()
		select {
		case err := <-errs:
			b.Fatal(err)
		default:
		}
	}
	b.Run("identical/clients=64", func(b *testing.B) { run(b, func(int) string { return variants[0] }) })
	b.Run("distinct/clients=64", func(b *testing.B) { run(b, func(c int) string { return variants[c] }) })
}
