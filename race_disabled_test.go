//go:build !race

package stethoscope_test

// raceEnabled reports that the race detector instruments this build.
const raceEnabled = false
