// Observability-layer tests: the always-on metrics registry, the live
// per-query progress table, the sliding-window EventsPerSec rate, and
// the opt-in HTTP exposition endpoint. The stress test here is part of
// the CI race job's serving-layer reentrancy proof.
package stethoscope

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"stethoscope/internal/metrics"
)

// TestMetricsCountersAfterExec checks that one materialized execution
// moves every layer's counters: engine runs/instructions, morsel rows,
// plan cache, and the query latency histogram.
func TestMetricsCountersAfterExec(t *testing.T) {
	db, err := Open(WithScaleFactor(0.001))
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	const q = "select l_tax from lineitem where l_partkey=1"
	for i := 0; i < 2; i++ {
		if _, err := db.Exec(ctx, q); err != nil {
			t.Fatal(err)
		}
	}
	// The morsel counters only move under the morsel lowering.
	if _, err := db.Exec(ctx, q, ExecMorselRows(Auto)); err != nil {
		t.Fatal(err)
	}

	snap := db.Metrics()
	for _, name := range []string{
		"stetho_engine_runs_total",
		"stetho_engine_instructions_total",
		"stetho_engine_morsels_claimed_total",
		"stetho_engine_morsel_rows_scanned_total",
		"stetho_plancache_misses_total",
		"stetho_plancache_hits_total",
	} {
		if snap.Value(name) < 1 {
			t.Errorf("%s = %d after two Execs, want >= 1", name, snap.Value(name))
		}
	}
	if got := snap.Value("stetho_engine_runs_total"); got < 2 {
		t.Errorf("engine runs = %d, want >= 2", got)
	}
	lat, ok := snap.Get("stetho_query_latency_us")
	if !ok || lat.Kind != metrics.KindHistogram || lat.Count < 3 {
		t.Errorf("latency histogram sample = %+v, want >= 3 observations", lat)
	}
	if snap.Value("stetho_engine_queries_inflight") != 0 {
		t.Errorf("queries_inflight = %d at rest", snap.Value("stetho_engine_queries_inflight"))
	}

	// The Prometheus rendering carries the same families.
	var sb strings.Builder
	if err := db.WriteMetrics(&sb); err != nil {
		t.Fatal(err)
	}
	text := sb.String()
	for _, want := range []string{
		"# TYPE stetho_engine_runs_total counter",
		"stetho_engine_worker_instructions_total{worker=\"0\"}",
		"stetho_query_latency_us_bucket{le=\"+Inf\"}",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("Prometheus text missing %q", want)
		}
	}
}

// TestProgressMidQuery holds a streaming run in flight (the unbuffered
// emit channel blocks the producer until the consumer drains) and
// samples DB.Progress while draining: every sampled counter must be
// monotonically non-decreasing, the run must be visible mid-query, and
// the table must empty out once the run completes.
func TestProgressMidQuery(t *testing.T) {
	db, err := Open(WithScaleFactor(0.001))
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	const q = "select l_orderkey from lineitem where l_quantity >= 0"
	it, err := db.Stream(ctx, q, ExecMorselRows(256), ExecWorkers(2))
	if err != nil {
		t.Fatal(err)
	}
	defer it.Close()

	// The producer is parked on its first emit until we start pulling
	// rows, so the run is observable mid-flight once it registers.
	var mid *QueryProgress
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if prog := db.Progress(); len(prog) == 1 {
			mid = &prog[0]
			break
		}
		time.Sleep(time.Millisecond)
	}
	if mid == nil {
		t.Fatal("in-flight streaming run never appeared in DB.Progress")
	}
	if mid.Label != q {
		t.Fatalf("progress label = %q, want the SQL text", mid.Label)
	}
	if mid.RowsTotal <= 0 || mid.MorselsTotal <= 0 {
		t.Fatalf("morsel cursor never reported totals: %+v", *mid)
	}

	last := *mid
	rows := 0
	for it.Next() {
		rows++
		if rows%200 != 0 {
			continue
		}
		for _, p := range db.Progress() {
			if p.ID != last.ID {
				continue
			}
			if p.InstrDone < last.InstrDone || p.RowsScanned < last.RowsScanned ||
				p.MorselsDone < last.MorselsDone {
				t.Fatalf("progress went backwards: %+v then %+v", last, p)
			}
			if f := p.Fraction(); f < 0 || f > 1 {
				t.Fatalf("fraction out of range: %v", f)
			}
			last = p
		}
	}
	if err := it.Err(); err != nil {
		t.Fatal(err)
	}
	if rows == 0 {
		t.Fatal("streaming run yielded no rows")
	}
	if last.RowsScanned < last.RowsTotal {
		// The final emit happens after the last morsel finishes its
		// scan, so by the time Next returns false the cursor is done.
		t.Fatalf("run completed with rows_scanned %d < rows_total %d", last.RowsScanned, last.RowsTotal)
	}
	if prog := db.Progress(); len(prog) != 0 {
		t.Fatalf("progress table leaked %d entries after completion", len(prog))
	}
}

// TestEventsPerSecWindowed is the regression test for the EventsPerSec
// decay bug: the old implementation divided lifetime events by lifetime
// uptime, so an idle database reported an ever-shrinking "rate" that
// never reached zero and diluted fresh bursts. The sliding window must
// read zero after idling past the window and report a fresh burst at
// full strength.
func TestEventsPerSecWindowed(t *testing.T) {
	db, err := Open(WithScaleFactor(0.001))
	if err != nil {
		t.Fatal(err)
	}
	now := time.Unix(1_000_000, 0)
	var mu sync.Mutex
	db.rate.SetClock(func() time.Time {
		mu.Lock()
		defer mu.Unlock()
		return now
	})
	advance := func(d time.Duration) {
		mu.Lock()
		now = now.Add(d)
		mu.Unlock()
	}

	if _, err := db.Exec(context.Background(), "select count(*) from lineitem"); err != nil {
		t.Fatal(err)
	}
	if got := db.Stats().EventsPerSec; got <= 0 {
		t.Fatalf("EventsPerSec = %v right after a run, want > 0", got)
	}

	// Two idle hours: a lifetime average would still read > 0 here.
	advance(2 * time.Hour)
	if got := db.Stats().EventsPerSec; got != 0 {
		t.Fatalf("EventsPerSec = %v after 2h idle, want 0", got)
	}

	// A fresh burst reports at windowed strength, undiluted by uptime.
	db.rate.Add(5 * int64(metrics.DefaultRateWindow/time.Second))
	if got := db.Stats().EventsPerSec; got < 4.9 {
		t.Fatalf("EventsPerSec = %v after a fresh burst, want ~5", got)
	}
}

// TestMetricsHTTPEndpoint opts into the observability endpoint and hits
// all three surfaces: Prometheus /metrics, JSON /progress, and the
// pprof index.
func TestMetricsHTTPEndpoint(t *testing.T) {
	db, err := Open(WithScaleFactor(0.001), WithMetricsAddr("127.0.0.1:0"))
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if _, err := db.Exec(context.Background(), "select count(*) from lineitem"); err != nil {
		t.Fatal(err)
	}
	base := "http://" + db.MetricsAddr()

	get := func(path string) (string, string) {
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(body), resp.Header.Get("Content-Type")
	}

	body, ctype := get("/metrics")
	if !strings.HasPrefix(ctype, "text/plain") || !strings.Contains(ctype, "0.0.4") {
		t.Errorf("/metrics content type = %q", ctype)
	}
	if !strings.Contains(body, "stetho_engine_runs_total") {
		t.Errorf("/metrics body missing engine counters:\n%s", body)
	}

	body, ctype = get("/progress")
	if !strings.HasPrefix(ctype, "application/json") {
		t.Errorf("/progress content type = %q", ctype)
	}
	var runs []map[string]any
	if err := json.Unmarshal([]byte(body), &runs); err != nil {
		t.Errorf("/progress is not a JSON array: %v (%s)", err, body)
	}
	if len(runs) != 0 {
		t.Errorf("/progress reported %d runs on an idle DB", len(runs))
	}

	if body, _ = get("/debug/pprof/"); !strings.Contains(body, "goroutine") {
		t.Errorf("pprof index looks wrong:\n%.200s", body)
	}
}

// TestMetricsAddrInUse: a bad metrics address must fail Open cleanly,
// not leak the half-built DB.
func TestMetricsAddrInUse(t *testing.T) {
	if _, err := Open(WithScaleFactor(0.001), WithMetricsAddr("256.0.0.1:bogus")); err == nil {
		t.Fatal("Open with an unusable metrics address should fail")
	}
}

// TestProgressWireCommand serves the DB over TCP and observes an
// in-flight streaming run through the PROGRESS wire command — the
// server shares the DB's engine, so its progress table is the same one.
// METRICS and STATS ride the same connection.
func TestProgressWireCommand(t *testing.T) {
	db, err := Open(WithScaleFactor(0.001))
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	srv, err := db.Serve(ctx, "progress-test", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	r, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	// Hold a streaming run mid-emit: its producer blocks on the
	// unbuffered channel until the iterator drains.
	const q = "select l_orderkey from lineitem where l_quantity >= 0"
	it, err := db.Stream(ctx, q, ExecMorselRows(256))
	if err != nil {
		t.Fatal(err)
	}
	defer it.Close()

	var line string
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		lines, err := r.Progress()
		if err != nil {
			t.Fatal(err)
		}
		if len(lines) == 1 {
			line = lines[0]
			break
		}
		time.Sleep(time.Millisecond)
	}
	if line == "" {
		t.Fatal("PROGRESS never showed the in-flight run")
	}
	for _, field := range []string{"id=", "fraction=", "rows_scanned=", "morsels_total=", "sql="} {
		if !strings.Contains(line, field) {
			t.Errorf("PROGRESS line missing %s: %q", field, line)
		}
	}
	if !strings.Contains(line, "l_orderkey") {
		t.Errorf("PROGRESS line does not carry the SQL text: %q", line)
	}

	text, err := r.Metrics()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"stetho_engine_runs_total", "stetho_server_commands_total", "stetho_server_sessions_active 1"} {
		if !strings.Contains(text, want) {
			t.Errorf("METRICS missing %q", want)
		}
	}

	stats, err := r.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if stats["engine_runs"] < 1 || stats["sessions_total"] < 1 || stats["commands"] < 2 {
		t.Errorf("STATS map = %v", stats)
	}

	// Drain the run; the wire-visible table must empty out.
	for it.Next() {
	}
	if err := it.Err(); err != nil {
		t.Fatal(err)
	}
	if lines, err := r.Progress(); err != nil || len(lines) != 0 {
		t.Errorf("PROGRESS after completion = %v, %v", lines, err)
	}
}

// TestStressMetricsReaders runs Exec traffic concurrently with
// Metrics/Progress/Stats snapshot readers. Under -race (the CI race job
// runs this file) it is the proof that the observability surface is
// safe to poll while the engine is hot.
func TestStressMetricsReaders(t *testing.T) {
	db, err := Open(WithScaleFactor(0.001))
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	queries := []string{
		"select l_tax from lineitem where l_partkey=1",
		"select count(*) from lineitem",
		"select l_orderkey from lineitem where l_quantity > 30",
	}

	var stop atomic.Bool
	var writers, readers sync.WaitGroup
	errs := make(chan error, 16)
	for g := 0; g < 8; g++ {
		writers.Add(1)
		go func(g int) {
			defer writers.Done()
			for i := 0; i < 6; i++ {
				q := queries[(g+i)%len(queries)]
				if _, err := db.Exec(ctx, q, ExecWorkers(1+(g+i)%4)); err != nil {
					errs <- fmt.Errorf("exec %q: %w", q, err)
					return
				}
			}
		}(g)
	}
	for g := 0; g < 4; g++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for !stop.Load() {
				snap := db.Metrics()
				if snap.Value("stetho_engine_runs_total") < 0 {
					errs <- fmt.Errorf("negative run counter")
					return
				}
				for _, p := range db.Progress() {
					if f := p.Fraction(); f < 0 || f > 1 {
						errs <- fmt.Errorf("fraction out of range: %v", f)
						return
					}
				}
				_ = db.Stats()
				var sb strings.Builder
				if err := db.WriteMetrics(&sb); err != nil {
					errs <- err
					return
				}
			}
		}()
	}
	writers.Wait()
	stop.Store(true)
	readers.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	// Identical concurrent statements share work: every Exec completes
	// (leader or attached), but only flight leaders run the engine.
	st := db.Stats()
	if st.Execs != 8*6 {
		t.Errorf("execs = %d, want %d", st.Execs, 8*6)
	}
	if st.SharedLed+st.SharedAttached != 8*6 {
		t.Errorf("led %d + attached %d = %d, want %d", st.SharedLed, st.SharedAttached,
			st.SharedLed+st.SharedAttached, 8*6)
	}
	if got := db.Metrics().Value("stetho_engine_runs_total"); got != st.SharedLed {
		t.Errorf("engine runs = %d, want one per flight leader (%d)", got, st.SharedLed)
	}
	if len(db.Progress()) != 0 {
		t.Error("progress table not empty after all runs returned")
	}
}
