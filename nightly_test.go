package stethoscope_test

import (
	"context"
	"os"
	"strconv"
	"strings"
	"testing"

	"stethoscope"
)

// TestTPCHNightlyLargeScale is the nightly workflow's large-data leg:
// the PR gate runs TPC-H at SF 0.05, the scheduled job persists an SF
// 0.2 dataset with tpchgen -persist, sets STETHO_TPCH_DIR (see
// .github/workflows/nightly.yml), and re-runs the exact-shape
// scan/join/sort pipelines against it — so the sweep also exercises the
// durable-storage read path (lazy segment-at-a-time scans) at scale.
// STETHO_TPCH_SF instead generates in memory, as before. With neither
// set the test skips, so it costs PR CI nothing.
func TestTPCHNightlyLargeScale(t *testing.T) {
	dirEnv := os.Getenv("STETHO_TPCH_DIR")
	sfEnv := os.Getenv("STETHO_TPCH_SF")
	if dirEnv == "" && sfEnv == "" {
		t.Skip("set STETHO_TPCH_DIR (a tpchgen -persist dataset) or STETHO_TPCH_SF (e.g. 0.2) to run the large-scale TPC-H sweep")
	}
	var (
		db  *stethoscope.DB
		sf  float64
		err error
	)
	if dirEnv != "" {
		db, err = stethoscope.OpenPath(dirEnv,
			stethoscope.WithPartitions(stethoscope.Auto),
			stethoscope.WithWorkers(stethoscope.Auto))
		if err != nil {
			t.Fatalf("OpenPath(%s): %v", dirEnv, err)
		}
		sf, _ = strconv.ParseFloat(db.DataMeta()["sf"], 64)
	} else {
		sf, err = strconv.ParseFloat(sfEnv, 64)
		if err != nil || sf <= 0 {
			t.Fatalf("bad STETHO_TPCH_SF %q: %v", sfEnv, err)
		}
		db, err = stethoscope.Open(
			stethoscope.WithScaleFactor(sf), stethoscope.WithSeed(42),
			stethoscope.WithPartitions(stethoscope.Auto),
			stethoscope.WithWorkers(stethoscope.Auto))
		if err != nil {
			t.Fatalf("Open(SF=%g): %v", sf, err)
		}
	}
	defer db.Close()
	queries := []string{
		scalingQuery,
		scalingJoinQuery,
		scalingSortQuery,
		"select count(*) as n from lineitem, orders where l_orderkey = o_orderkey",
		"select distinct l_shipmode from lineitem order by l_shipmode",
		"select l_orderkey, l_extendedprice from lineitem order by l_extendedprice desc, l_orderkey limit 1000",
	}
	ctx := context.Background()
	for _, q := range queries {
		seq, err := db.Exec(ctx, q, stethoscope.ExecPartitions(1), stethoscope.ExecWorkers(1))
		if err != nil {
			t.Fatalf("Exec(seq, %q): %v", q, err)
		}
		auto, err := db.Exec(ctx, q)
		if err != nil {
			t.Fatalf("Exec(auto, %q): %v", q, err)
		}
		var seqBuf, autoBuf strings.Builder
		if err := seq.WriteTable(&seqBuf); err != nil {
			t.Fatal(err)
		}
		if err := auto.WriteTable(&autoBuf); err != nil {
			t.Fatal(err)
		}
		if seqBuf.String() != autoBuf.String() {
			t.Errorf("SF=%g %q: auto result differs from sequential (partitions=%d workers=%d, %s)",
				sf, q, auto.Stats.Partitions, auto.Stats.Workers, auto.Stats.TuneReason)
		}
		t.Logf("SF=%g %q: rows=%d partitions=%d workers=%d seq=%v auto=%v",
			sf, q, auto.Rows(), auto.Stats.Partitions, auto.Stats.Workers,
			seq.Stats.Elapsed, auto.Stats.Elapsed)
	}
}
