// Facade tests: the public API exercised exactly as an external consumer
// would use it (hence the _test package), on the paper's Figure 1 query.
package stethoscope_test

import (
	"context"
	"errors"
	"reflect"
	"strings"
	"testing"
	"time"

	"stethoscope"
)

// figure1Query is the paper's own example (Figure 1).
const figure1Query = "select l_tax from lineitem where l_partkey=1"

func openTestDB(t *testing.T) *stethoscope.DB {
	t.Helper()
	db, err := stethoscope.Open(stethoscope.WithScaleFactor(0.005), stethoscope.WithSeed(42))
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return db
}

// TestGoldenFigure1 runs Open → Exec → Analyze end to end and pins the
// observable shape of the paper's Figure 1 pipeline.
func TestGoldenFigure1(t *testing.T) {
	db := openTestDB(t)
	res, err := db.Exec(context.Background(), figure1Query)
	if err != nil {
		t.Fatalf("Exec: %v", err)
	}

	// Plan shape: the Figure 1 operators must appear in the optimized MAL.
	listing := res.PlanString()
	for _, want := range []string{"sql.bind", "algebra.thetaselect", "algebra.leftjoin", "sql.exportResult"} {
		if !strings.Contains(listing, want) {
			t.Errorf("plan missing %s:\n%s", want, listing)
		}
	}

	// The generator is seeded: the result is reproducible.
	if res.RowCount() != 32 {
		t.Errorf("rows = %d, want 32 (SF=0.005, seed=42)", res.RowCount())
	}
	if got, want := res.Columns(), []string{"l_tax"}; !reflect.DeepEqual(got, want) {
		t.Errorf("columns = %v, want %v", got, want)
	}

	// Trace: one start + one done per executed instruction.
	if res.TraceLen() == 0 {
		t.Fatal("empty trace")
	}
	if got, want := res.TraceLen(), 2*res.Stats.Instructions; got != want {
		t.Errorf("trace has %d events, want %d (2 per instruction)", got, want)
	}

	// Analysis: the trace maps completely onto the plan graph.
	a, err := stethoscope.Analyze(res)
	if err != nil {
		t.Fatalf("Analyze: %v", err)
	}
	if !a.MappingComplete() {
		t.Errorf("trace/dot mapping incomplete: %s", a.MappingSummary())
	}
	if a.Nodes() != res.Stats.Instructions {
		t.Errorf("graph has %d nodes, want %d", a.Nodes(), res.Stats.Instructions)
	}
	if out := a.RenderGraph(stethoscope.DefaultRender()); !strings.Contains(out, "[n0 ]") {
		t.Errorf("graph render missing node n0:\n%s", out)
	}

	// Deterministic coloring: analyzing the same result twice yields the
	// same coloring, and threshold(0) flags exactly the executed pcs.
	b, err := stethoscope.Analyze(res)
	if err != nil {
		t.Fatalf("Analyze (second): %v", err)
	}
	if !reflect.DeepEqual(a.Coloring(), b.Coloring()) {
		t.Errorf("pair coloring not deterministic: %v vs %v", a.Coloring(), b.Coloring())
	}
	a.Recolor(stethoscope.WithColoring(stethoscope.ColorThreshold), stethoscope.WithThreshold(0))
	if got := len(a.Coloring()); got != res.Stats.Instructions {
		t.Errorf("threshold(0) flags %d pcs, want %d", got, res.Stats.Instructions)
	}
	for pc, c := range a.Coloring() {
		if c != stethoscope.ColorGreen {
			t.Errorf("threshold(0) pc=%d colored %q, want green", pc, c)
		}
	}

	// Replay drives the glyph space to completion.
	a.Replay().FastForward(res.TraceLen())
	if out := a.RenderReplay(stethoscope.DefaultRender()); !strings.Contains(out, "+") {
		t.Errorf("replayed render shows no completed nodes:\n%s", out)
	}
}

// TestOfflineRoundTrip writes the offline artifacts a Result exports and
// reopens them through the facade's offline path.
func TestOfflineRoundTrip(t *testing.T) {
	db := openTestDB(t)
	res, err := db.Exec(context.Background(), figure1Query,
		stethoscope.ExecPartitions(4), stethoscope.ExecWorkers(2))
	if err != nil {
		t.Fatalf("Exec: %v", err)
	}
	a, err := stethoscope.OpenOffline(res.Dot(), res.TraceText())
	if err != nil {
		t.Fatalf("OpenOffline: %v", err)
	}
	if !a.MappingComplete() {
		t.Errorf("offline mapping incomplete: %s", a.MappingSummary())
	}
	if a.TraceLen() != res.TraceLen() {
		t.Errorf("offline trace has %d events, want %d", a.TraceLen(), res.TraceLen())
	}
}

// TestExecContextCancel verifies that Exec honors context cancellation
// in both execution modes.
func TestExecContextCancel(t *testing.T) {
	db := openTestDB(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, workers := range []int{1, 4} {
		_, err := db.Exec(ctx, figure1Query,
			stethoscope.ExecPartitions(8), stethoscope.ExecWorkers(workers))
		if err == nil {
			t.Fatalf("workers=%d: Exec succeeded under canceled context", workers)
		}
		if !errors.Is(err, context.Canceled) {
			t.Errorf("workers=%d: error %v does not wrap context.Canceled", workers, err)
		}
	}
	// A live context still executes.
	if _, err := db.Exec(context.Background(), figure1Query); err != nil {
		t.Fatalf("Exec after cancel test: %v", err)
	}
}

// TestMonitorCancelThenClose pins the documented Attach usage: cancel
// the context, then Close the monitor (as every consumer's deferred
// Close does). This used to panic with a double channel close.
func TestMonitorCancelThenClose(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	mon, err := stethoscope.Attach(ctx, "127.0.0.1:0")
	if err != nil {
		t.Fatalf("Attach: %v", err)
	}
	cancel()
	time.Sleep(20 * time.Millisecond) // let the context watcher close the listener
	if err := mon.Close(); err != nil {
		t.Fatalf("Close after cancel: %v", err)
	}
	if err := mon.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
}
