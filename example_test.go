package stethoscope_test

import (
	"context"
	"fmt"
	"log"
	"os"
	"time"

	"stethoscope"
)

// The classic flow: open an in-memory TPC-H database, execute one
// statement, and read the result and its execution statistics.
func ExampleOpen() {
	db, err := stethoscope.Open(
		stethoscope.WithScaleFactor(0.005),
		stethoscope.WithSeed(42))
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	res, err := db.Exec(context.Background(),
		"select l_tax from lineitem where l_partkey=1")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(res.Columns(), res.RowCount() > 0, res.Stats.Instructions > 0)
	// Output: [l_tax] true true
}

// Streaming hands out result rows while the engine is still scanning:
// Stream returns a RowIter whose first rows are consumable before the
// run completes, with backpressure bounding in-flight memory.
func ExampleDB_Stream() {
	db, err := stethoscope.Open(
		stethoscope.WithScaleFactor(0.005),
		stethoscope.WithSeed(42))
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	it, err := db.Stream(context.Background(),
		"select l_orderkey, l_extendedprice from lineitem",
		stethoscope.ExecMorselRows(stethoscope.Auto))
	if err != nil {
		log.Fatal(err)
	}
	defer it.Close()

	rows := 0
	for it.Next() {
		var key int64
		var price float64
		if err := it.Scan(&key, &price); err != nil {
			log.Fatal(err)
		}
		rows++
	}
	fmt.Println(it.Err() == nil, rows > 0)
	// Output: true true
}

// A generated dataset can be persisted once as a durable columnar
// snapshot and reopened from disk without regeneration: OpenPath reads
// only the manifest, and columns materialize on first scan.
func ExampleDB_Persist() {
	dir, err := os.MkdirTemp("", "stetho-dataset")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	db, err := stethoscope.Open(
		stethoscope.WithScaleFactor(0.005),
		stethoscope.WithSeed(42))
	if err != nil {
		log.Fatal(err)
	}
	if err := db.Persist(dir); err != nil {
		log.Fatal(err)
	}
	db.Close()

	db2, err := stethoscope.OpenPath(dir)
	if err != nil {
		log.Fatal(err)
	}
	defer db2.Close()

	res, err := db2.Exec(context.Background(),
		"select count(*) as n from lineitem")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(db2.DataMeta()["source"], res.RowCount())
	// Output: tpchgen 1
}

// Progress exposes the engine's in-flight runs while they execute:
// one entry per running query with instruction, row, and morsel counts
// and a completion fraction. An idle DB reports none.
func ExampleDB_Progress() {
	db, err := stethoscope.Open(
		stethoscope.WithScaleFactor(0.005),
		stethoscope.WithSeed(42))
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	for _, p := range db.Progress() {
		fmt.Printf("run %d: %.0f%% of %s\n", p.ID, p.Fraction()*100, p.Label)
	}
	fmt.Println("in flight:", len(db.Progress()))
	// Output: in flight: 0
}

// WithHistory gives the DB a durable memory: every execution is
// recorded into an append-only trace store that survives restarts,
// listable and replayable afterwards.
func ExampleDB_History() {
	dir, err := os.MkdirTemp("", "stetho-history")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	db, err := stethoscope.Open(
		stethoscope.WithScaleFactor(0.005),
		stethoscope.WithSeed(42),
		stethoscope.WithHistory(dir))
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	res, err := db.Exec(context.Background(),
		"select l_tax from lineitem where l_partkey=1")
	if err != nil {
		log.Fatal(err)
	}

	h := db.History()
	for _, r := range h.TopN(1) {
		fmt.Println(r.ID == res.Stats.RunID, r.SQL, r.OK())
	}
	// Output: true select l_tax from lineitem where l_partkey=1 true
}

// WithResultCache turns on result reuse: a completed outcome is served
// to later identical statements without executing at all, until its
// TTL lapses or the dataset changes. Stats.Shared reports how a result
// was produced.
func ExampleWithResultCache() {
	db, err := stethoscope.Open(
		stethoscope.WithScaleFactor(0.005),
		stethoscope.WithSeed(42),
		stethoscope.WithResultCache(64, time.Minute))
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	const q = "select count(*) as n from orders"
	first, err := db.Exec(context.Background(), q)
	if err != nil {
		log.Fatal(err)
	}
	again, err := db.Exec(context.Background(), q)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("first=%q again=%q\n", first.Stats.Shared, again.Stats.Shared)
	// Output: first="" again="resultcache"
}
