module stethoscope

go 1.23
