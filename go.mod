module stethoscope

go 1.24
