package stethoscope

import (
	"fmt"
	"io"
	"time"

	"stethoscope/internal/dot"
	"stethoscope/internal/tracestore"
)

// The query-history facade: a durable trace store that survives process
// restarts, so "what ran slowly yesterday?" has an answer. Enable it on
// a DB with WithHistory(dir) — every Exec and every server QUERY is
// then recorded (plan dot text, full profiler event stream, completion
// stats) — or open a store standalone with OpenHistory (the tracehist
// CLI's path).

// Run-history leaf types, re-exported like the other pipeline leaves.
type (
	// RunInfo describes one recorded run (id, SQL, start time, settings,
	// event count, completion stats).
	RunInfo = tracestore.RunInfo
	// RunDiff is the cross-run comparison of two executions of the same
	// SQL: wall-time delta, regression verdict, per-instruction and
	// per-module busy-time deltas.
	RunDiff = tracestore.Diff
	// InstrDelta is one instruction's cost difference within a RunDiff.
	InstrDelta = tracestore.InstrDelta
	// ModuleDelta is one module's cost difference within a RunDiff.
	ModuleDelta = tracestore.ModuleDelta
	// AggStat is one row of a history rollup (module or operator).
	AggStat = tracestore.AggStat
	// HistoryStats snapshots the store footprint and maintenance
	// counters (segments, bytes, recovery, retention drops).
	HistoryStats = tracestore.StoreStats
)

// HistoryConfig tunes the durable trace store behind WithHistoryConfig.
// The zero value of every field but Dir selects the defaults: 8 MiB
// segments, unlimited retention, compaction sweep every 30 s.
type HistoryConfig struct {
	// Dir is the store directory, created if missing.
	Dir string
	// MaxSegmentBytes is the segment rollover threshold.
	MaxSegmentBytes int64
	// MaxTotalBytes caps the store size; retention deletes the oldest
	// sealed segments to stay under it. 0 means unlimited.
	MaxTotalBytes int64
	// MaxAge expires sealed segments whose newest record is older.
	// 0 means unlimited.
	MaxAge time.Duration
	// CompactEvery is the background retention sweep interval.
	// 0 selects 30 s; negative disables the background compactor.
	CompactEvery time.Duration
	// ReadOnly opens the store for inspection without taking the
	// writer lock and without truncating a torn tail — safe against a
	// store a live process is appending to. Record and Compact fail on
	// a read-only History.
	ReadOnly bool
}

// WithHistory enables the durable query history on the DB: every
// executed query's plan and profiler trace is persisted to a trace
// store at dir and queryable via DB.History after restarts.
func WithHistory(dir string) Option {
	return WithHistoryConfig(HistoryConfig{Dir: dir})
}

// WithHistoryConfig is WithHistory with retention tuning.
func WithHistoryConfig(hc HistoryConfig) Option {
	return func(c *config) { c.history = &hc }
}

func (hc HistoryConfig) storeOptions() tracestore.Options {
	compact := hc.CompactEvery
	if compact == 0 {
		compact = 30 * time.Second
	} else if compact < 0 {
		compact = 0
	}
	if hc.ReadOnly {
		compact = 0
	}
	return tracestore.Options{
		Dir:             hc.Dir,
		MaxSegmentBytes: hc.MaxSegmentBytes,
		MaxTotalBytes:   hc.MaxTotalBytes,
		MaxAge:          hc.MaxAge,
		CompactEvery:    compact,
		ReadOnly:        hc.ReadOnly,
	}
}

// History is the handle over a durable trace store: list and rank
// recorded runs, fetch or replay one, and diff two runs of the same
// SQL. A History attached to a DB (DB.History) is closed by DB.Close;
// a standalone one (OpenHistory) is closed by its own Close.
type History struct {
	st *tracestore.Store
}

// OpenHistory opens (or creates) a trace store without a DB — the path
// tracegen -store and offline tooling use. Crash recovery runs during
// open: a torn tail record left by a killed process is truncated and
// logged, losing at most that record. Writers are exclusive: opening a
// store a live process is writing fails (use OpenHistoryReadOnly to
// inspect one).
func OpenHistory(dir string) (*History, error) {
	return OpenHistoryConfig(HistoryConfig{Dir: dir, CompactEvery: -1})
}

// OpenHistoryReadOnly opens a trace store for inspection only — no
// writer lock, no recovery truncation — so it is safe against a store
// a live server is appending to. This is the tracehist CLI's path.
func OpenHistoryReadOnly(dir string) (*History, error) {
	return OpenHistoryConfig(HistoryConfig{Dir: dir, ReadOnly: true})
}

// OpenHistoryConfig is OpenHistory with retention tuning.
func OpenHistoryConfig(hc HistoryConfig) (*History, error) {
	st, err := tracestore.Open(hc.storeOptions())
	if err != nil {
		return nil, fmt.Errorf("stethoscope: history: %w", err)
	}
	return &History{st: st}, nil
}

// Close seals the store (flush + fsync) and stops its background
// compactor.
func (h *History) Close() error { return h.st.Close() }

// Queries lists the recorded runs, most recent first. limit <= 0
// returns all of them.
func (h *History) Queries(limit int) []RunInfo {
	runs := h.st.Runs()
	for i, j := 0, len(runs)-1; i < j; i, j = i+1, j-1 {
		runs[i], runs[j] = runs[j], runs[i]
	}
	if limit > 0 && limit < len(runs) {
		runs = runs[:limit]
	}
	return runs
}

// TopN returns the n slowest successfully completed runs, slowest
// first — "what ran slowly yesterday?".
func (h *History) TopN(n int) []RunInfo { return h.st.TopN(n) }

// Get materializes one recorded run: its metadata, plan dot text, and
// the full event stream with every trace analytic of a live Result
// (Costly, Utilization, ModuleBreakdown, Gantt, birds-eye, ...).
func (h *History) Get(id uint64) (*Run, error) {
	info, ok := h.st.Run(id)
	if !ok {
		return nil, fmt.Errorf("stethoscope: history: unknown run %d", id)
	}
	evs, err := h.st.Events(id)
	if err != nil {
		return nil, fmt.Errorf("stethoscope: history: %w", err)
	}
	dotText, err := h.st.Dot(id)
	if err != nil {
		return nil, fmt.Errorf("stethoscope: history: %w", err)
	}
	return &Run{traceView: traceView{events: evs}, Info: info, dotText: dotText}, nil
}

// Replay reopens a recorded run as a visual-analysis session — the
// exact OpenOffline path, fed from the store instead of files — so
// coloring, replay stepping, reports, and SVG rendering all work on
// historical traces.
func (h *History) Replay(id uint64, opts ...AnalyzeOption) (*Analysis, error) {
	run, err := h.Get(id)
	if err != nil {
		return nil, err
	}
	g, err := dot.Parse(run.dotText)
	if err != nil {
		return nil, fmt.Errorf("stethoscope: history: stored dot: %w", err)
	}
	return newAnalysis(g, run.store(), opts)
}

// Compare diffs two recorded runs of the same SQL: wall-time delta, a
// ≥10%-slower regression verdict, and per-instruction / per-module
// busy-time deltas, largest first.
func (h *History) Compare(a, b uint64) (*RunDiff, error) {
	d, err := h.st.Compare(a, b)
	if err != nil {
		return nil, fmt.Errorf("stethoscope: history: %w", err)
	}
	return d, nil
}

// ModuleRollup aggregates busy time per MAL module across the given
// runs (all runs when none are named), busiest first.
func (h *History) ModuleRollup(ids ...uint64) ([]AggStat, error) {
	return h.st.ModuleRollup(ids...)
}

// OperatorRollup aggregates busy time per MAL operator across the
// given runs, busiest first.
func (h *History) OperatorRollup(ids ...uint64) ([]AggStat, error) {
	return h.st.OperatorRollup(ids...)
}

// Utilization summarizes a stored run's multi-core usage.
func (h *History) Utilization(id uint64) (Utilization, error) {
	return h.st.Utilization(id)
}

// Compact enforces the retention policy immediately.
func (h *History) Compact() error { return h.st.Compact() }

// Stats snapshots the store footprint and maintenance counters.
func (h *History) Stats() HistoryStats { return h.st.Stats() }

// Record persists an already-executed Result as a run — the path
// tracegen -store uses to seed a store without a live server. It
// returns the new run id.
func (h *History) Record(res *Result) (uint64, error) {
	events := res.Events()
	w, err := h.st.Begin(tracestore.RunMeta{
		SQL:          res.Query,
		Dot:          res.Dot(),
		Start:        time.Now().Add(-res.Stats.Elapsed),
		Partitions:   res.Stats.Partitions,
		Workers:      res.Stats.Workers,
		Instructions: res.Stats.Instructions,
		AutoTuned:    res.Stats.AutoTuned,
		TuneReason:   res.Stats.TuneReason,
	})
	if err != nil {
		return 0, fmt.Errorf("stethoscope: history: %w", err)
	}
	for len(events) > 0 {
		n := len(events)
		if n > tracestore.DefaultAppendBatch {
			n = tracestore.DefaultAppendBatch
		}
		w.EmitBatch(events[:n])
		events = events[n:]
	}
	if err := w.Finish(tracestore.RunStats{
		ElapsedUs: res.Stats.Elapsed.Microseconds(),
		Rows:      res.RowCount(),
		CacheHit:  res.Stats.CacheHit,
	}); err != nil {
		return 0, fmt.Errorf("stethoscope: history: %w", err)
	}
	return w.ID(), nil
}

// Run is one recorded execution fetched from the history. It embeds the
// same traceView as Result and Analysis, so every trace analytic works
// on stored runs.
type Run struct {
	traceView

	// Info is the run's stored metadata and completion statistics.
	Info RunInfo

	dotText string
}

// Dot returns the stored plan dot text — pair it with TraceText to feed
// OpenOffline, or use History.Replay directly.
func (r *Run) Dot() string { return r.dotText }

// TraceText renders the stored events as trace-file lines.
func (r *Run) TraceText() string {
	var b []byte
	for _, e := range r.store().Events() {
		b = append(b, e.Marshal()...)
		b = append(b, '\n')
	}
	return string(b)
}

// WriteTrace writes the trace-file representation.
func (r *Run) WriteTrace(w io.Writer) error {
	_, err := io.WriteString(w, r.TraceText())
	return err
}
