// Serving-layer tests: the shared plan cache, DB.Stats, and the
// 32-goroutine mixed-workload stress test the CI race job runs.
package stethoscope

import (
	"context"
	"fmt"
	"io"
	"strings"
	"sync"
	"testing"
)

func TestPlanCacheHitsAndStats(t *testing.T) {
	db, err := Open(WithScaleFactor(0.001))
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	const q = "select l_tax from lineitem where l_partkey=1"

	r1, err := db.Exec(ctx, q)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Stats.CacheHit {
		t.Fatal("first execution cannot be a cache hit")
	}
	r2, err := db.Exec(ctx, q)
	if err != nil {
		t.Fatal(err)
	}
	if !r2.Stats.CacheHit {
		t.Fatal("second execution should hit the plan cache")
	}
	if r1.Rows() != r2.Rows() {
		t.Fatalf("cached run returned %d rows, cold returned %d", r2.Rows(), r1.Rows())
	}
	// A different partition count compiles separately.
	r3, err := db.Exec(ctx, q, ExecPartitions(4))
	if err != nil {
		t.Fatal(err)
	}
	if r3.Stats.CacheHit {
		t.Fatal("changed partitions must not reuse the cached plan")
	}
	// Explain shares the cache with Exec.
	if _, err := db.Explain(q); err != nil {
		t.Fatal(err)
	}

	st := db.Stats()
	if st.Cache.Hits < 2 || st.Cache.Misses < 2 {
		t.Fatalf("cache stats = %+v", st.Cache)
	}
	if st.Execs != 3 {
		t.Fatalf("execs = %d, want 3", st.Execs)
	}
	if st.Events == 0 || st.EventsPerSec <= 0 {
		t.Fatalf("event counters not tracked: %+v", st)
	}
	if st.InFlight != 0 {
		t.Fatalf("in-flight = %d at rest", st.InFlight)
	}
}

func TestPlanCacheDisabled(t *testing.T) {
	db, err := Open(WithScaleFactor(0.001), WithPlanCacheSize(0))
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	const q = "select l_tax from lineitem where l_partkey=1"
	for i := 0; i < 2; i++ {
		res, err := db.Exec(ctx, q)
		if err != nil {
			t.Fatal(err)
		}
		if res.Stats.CacheHit {
			t.Fatal("cache disabled but Exec reported a hit")
		}
	}
	if st := db.Stats(); st.Cache.Capacity != 0 {
		t.Fatalf("disabled cache should report zero stats, got %+v", st.Cache)
	}
}

// TestStressMixedWorkload fires 32 goroutines of mixed Exec / Explain /
// DumpCSV against one DB. Run under -race (the CI race job does) this
// is the serving-layer reentrancy proof: shared engine, shared plan
// cache, shared catalog, per-run isolation.
func TestStressMixedWorkload(t *testing.T) {
	db, err := Open(WithScaleFactor(0.001))
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	queries := []string{
		"select l_tax from lineitem where l_partkey=1",
		"select l_orderkey from lineitem where l_quantity > 30",
		"select count(*) from lineitem",
		"select l_extendedprice * (1 - l_discount) as revenue from lineitem where l_partkey = 2",
	}
	const goroutines = 32
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 8; i++ {
				switch (g + i) % 3 {
				case 0:
					q := queries[(g+i)%len(queries)]
					workers := 1
					if (g+i)%4 == 1 {
						workers = 4
					}
					res, err := db.Exec(ctx, q, ExecPartitions(1+(g+i)%3), ExecWorkers(workers))
					if err != nil {
						errs <- fmt.Errorf("exec %q: %w", q, err)
						return
					}
					if res.TraceLen() == 0 {
						errs <- fmt.Errorf("exec %q produced no trace", q)
						return
					}
				case 1:
					q := queries[(g+i)%len(queries)]
					listing, err := db.Explain(q)
					if err != nil {
						errs <- fmt.Errorf("explain %q: %w", q, err)
						return
					}
					if !strings.Contains(listing, "function user.main") {
						errs <- fmt.Errorf("explain %q returned garbage", q)
						return
					}
				default:
					if err := db.DumpCSV(io.Discard, "region", 0); err != nil {
						errs <- fmt.Errorf("dumpcsv: %w", err)
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	st := db.Stats()
	if st.Cache.Hits == 0 {
		t.Error("stress run never hit the plan cache")
	}
	if st.InFlight != 0 {
		t.Errorf("in-flight = %d after all runs returned", st.InFlight)
	}
}
