package stethoscope

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"time"
)

// metricsServer is the opt-in observability HTTP endpoint
// (WithMetricsAddr): Prometheus text exposition at /metrics, the live
// progress table as JSON at /progress, and the stdlib pprof profiling
// handlers under /debug/pprof/. It is read-only — nothing on it mutates
// the DB — and private to one DB, so two DBs in one process never mix
// registries the way the global pprof mux would.
type metricsServer struct {
	ln  net.Listener
	srv *http.Server
}

// startMetricsServer binds addr and serves until close.
func startMetricsServer(db *DB, addr string) (*metricsServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("stethoscope: metrics endpoint: %w", err)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		db.WriteMetrics(w)
	})
	mux.HandleFunc("/progress", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		prog := db.Progress()
		out := make([]progressJSON, 0, len(prog))
		for _, p := range prog {
			out = append(out, progressJSON{
				ID:           p.ID,
				Label:        p.Label,
				ElapsedUs:    p.Elapsed.Microseconds(),
				Fraction:     p.Fraction(),
				InstrDone:    p.InstrDone,
				InstrTotal:   p.InstrTotal,
				RowsScanned:  p.RowsScanned,
				RowsTotal:    p.RowsTotal,
				MorselsDone:  p.MorselsDone,
				MorselsTotal: p.MorselsTotal,
			})
		}
		json.NewEncoder(w).Encode(out)
	})
	// The stdlib pprof handlers, on this mux instead of the process-wide
	// DefaultServeMux (which WithMetricsAddr must not silently claim).
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	ms := &metricsServer{ln: ln, srv: &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second}}
	go ms.srv.Serve(ln)
	return ms, nil
}

// progressJSON is the /progress wire shape.
type progressJSON struct {
	ID           int64   `json:"id"`
	Label        string  `json:"label"`
	ElapsedUs    int64   `json:"elapsed_us"`
	Fraction     float64 `json:"fraction"`
	InstrDone    int64   `json:"instr_done"`
	InstrTotal   int64   `json:"instr_total"`
	RowsScanned  int64   `json:"rows_scanned"`
	RowsTotal    int64   `json:"rows_total"`
	MorselsDone  int64   `json:"morsels_done"`
	MorselsTotal int64   `json:"morsels_total"`
}

func (ms *metricsServer) addr() string { return ms.ln.Addr().String() }

func (ms *metricsServer) close() {
	ms.srv.Close()
}
