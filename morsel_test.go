// Facade-level tests of morsel-driven execution: results are
// byte-identical to sequential execution across query shapes, morsel
// sizes, and worker counts, and the ExecMorselRows option normalizes,
// resolves, and records exactly like the PR 4 partition/worker options.
package stethoscope_test

import (
	"context"
	"strings"
	"testing"

	"stethoscope"
)

// morselSweepQueries mirrors the persisted-dataset equality sweep
// (persist_test.go) plus shapes the morsel lowering treats specially:
// duplicate-key group-bys (partial-aggregate merge), empty results
// (zero-row morsel placeholders), and a table smaller than one morsel.
var morselSweepQueries = []string{
	scalingQuery,
	scalingJoinQuery,
	scalingSortQuery,
	"select count(*) as n from lineitem, orders where l_orderkey = o_orderkey",
	"select distinct l_shipmode from lineitem order by l_shipmode",
	"select n_name, r_name from nation, region where n_regionkey = r_regionkey order by n_name",
	"select l_shipmode, count(*) as n from lineitem group by l_shipmode order by l_shipmode",
	"select count(*) as n, min(l_quantity) as mn, max(l_quantity) as mx from lineitem where l_quantity < 0",
	"select n_name from nation where n_regionkey = 1 order by n_name",
}

// TestMorselMatchesSequentialByteForByte: every query shape, rendered
// through WriteTable, must be byte-identical between the sequential
// lowering and the morsel lowering at 1/4/8 workers — including a
// 64-row morsel that forces hundreds of cursor claims per scan.
func TestMorselMatchesSequentialByteForByte(t *testing.T) {
	db, err := stethoscope.Open(stethoscope.WithScaleFactor(0.005), stethoscope.WithSeed(42))
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer db.Close()
	for _, q := range morselSweepQueries {
		want := tableString(t, db, q, stethoscope.ExecPartitions(1), stethoscope.ExecWorkers(1))
		for _, workers := range []int{1, 4, 8} {
			for _, morsel := range []int{64, stethoscope.Auto} {
				got := tableString(t, db, q,
					stethoscope.ExecMorselRows(morsel), stethoscope.ExecWorkers(workers))
				if got != want {
					t.Errorf("%s (workers=%d morsel=%d):\nmorsel:\n%s\nsequential:\n%s",
						q, workers, morsel, got, want)
				}
			}
		}
	}
}

// TestExecMorselRowsNormalized mirrors the ExecPartitions(0) regression
// for the new knob: out-of-range morsel sizes clamp through the shared
// rule before anything is recorded, and — the morsel size being a
// runtime option, not a compile option — no second plan-cache entry
// appears for any size.
func TestExecMorselRowsNormalized(t *testing.T) {
	db := openTestDB(t)
	base, err := db.Exec(context.Background(), figure1Query, stethoscope.ExecMorselRows(512))
	if err != nil {
		t.Fatalf("Exec(morsel=512): %v", err)
	}
	if base.Stats.MorselRows != 512 {
		t.Fatalf("Stats.MorselRows = %d, want 512", base.Stats.MorselRows)
	}
	for _, n := range []int{0, -3} {
		res, err := db.Exec(context.Background(), figure1Query, stethoscope.ExecMorselRows(n))
		if err != nil {
			t.Fatalf("Exec(morsel=%d): %v", n, err)
		}
		if !res.Stats.CacheHit {
			t.Errorf("Exec(morsel=%d) missed the cache: morsel size leaked into the plan key", n)
		}
		if res.Stats.MorselRows != 1 {
			t.Errorf("Exec(morsel=%d) reports MorselRows=%d, want 1 (clamped)", n, res.Stats.MorselRows)
		}
	}
	if got := db.Stats().Cache.Len; got != 1 {
		t.Errorf("plan cache holds %d entries, want 1 (morsel sizes must share one plan)", got)
	}
	// The static and morsel lowerings are different plans: turning the
	// mode on and off is exactly two entries.
	if _, err := db.Exec(context.Background(), figure1Query); err != nil {
		t.Fatalf("Exec(static): %v", err)
	}
	if got := db.Stats().Cache.Len; got != 2 {
		t.Errorf("plan cache holds %d entries after static run, want 2 (mode is part of the key)", got)
	}
}

// TestMorselAutoRecorded: ExecMorselRows(Auto) resolves to a concrete
// size, flags the run auto-tuned, and carries the morsel=N note through
// Stats and the durable history RunMeta.
func TestMorselAutoRecorded(t *testing.T) {
	db, err := stethoscope.Open(
		stethoscope.WithScaleFactor(0.005), stethoscope.WithSeed(42),
		stethoscope.WithHistory(t.TempDir()))
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer db.Close()
	res, err := db.Exec(context.Background(), figure1Query, stethoscope.ExecMorselRows(stethoscope.Auto))
	if err != nil {
		t.Fatalf("Exec: %v", err)
	}
	if res.Stats.MorselRows < 1 {
		t.Fatalf("auto morsel resolved to %d", res.Stats.MorselRows)
	}
	if !res.Stats.AutoTuned {
		t.Error("Stats.AutoTuned = false under ExecMorselRows(Auto)")
	}
	if !strings.Contains(res.Stats.TuneReason, "morsel=") {
		t.Errorf("Stats.TuneReason = %q, want a morsel= note", res.Stats.TuneReason)
	}
	run, err := db.History().Get(res.Stats.RunID)
	if err != nil {
		t.Fatalf("run %d not in history: %v", res.Stats.RunID, err)
	}
	if !run.Info.AutoTuned || !strings.Contains(run.Info.TuneReason, "morsel=") {
		t.Errorf("history RunMeta = %v %q, want the morsel resolution", run.Info.AutoTuned, run.Info.TuneReason)
	}
}

// TestOpenValidatesMorselConfig: WithMorselRows validates like the
// other Open knobs and, when given, becomes the Exec default.
func TestOpenValidatesMorselConfig(t *testing.T) {
	if _, err := stethoscope.Open(stethoscope.WithScaleFactor(0.005), stethoscope.WithMorselRows(0)); err == nil {
		t.Error("Open(WithMorselRows(0)) accepted")
	}
	if _, err := stethoscope.Open(stethoscope.WithScaleFactor(0.005), stethoscope.WithMorselRows(-2)); err == nil {
		t.Error("Open(WithMorselRows(-2)) accepted")
	}
	db, err := stethoscope.Open(stethoscope.WithScaleFactor(0.005), stethoscope.WithSeed(42),
		stethoscope.WithMorselRows(stethoscope.Auto))
	if err != nil {
		t.Fatalf("Open(WithMorselRows(Auto)) rejected: %v", err)
	}
	defer db.Close()
	res, err := db.Exec(context.Background(), figure1Query)
	if err != nil {
		t.Fatalf("Exec under morsel default: %v", err)
	}
	if res.Stats.MorselRows < 1 {
		t.Errorf("Stats.MorselRows = %d, want the DB-default morsel mode in effect", res.Stats.MorselRows)
	}
}
