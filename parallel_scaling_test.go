package stethoscope_test

import (
	"context"
	"runtime"
	"strings"
	"testing"
	"time"

	"stethoscope"
)

// scalingQuery is an aggregate/group-by TPC-H pipeline whose merged
// aggregates (count, min, max) are exact under mitosis, so auto and
// sequential execution must agree byte for byte.
const scalingQuery = "select l_returnflag, count(*) as n, min(l_quantity) as mn, max(l_quantity) as mx " +
	"from lineitem where l_shipdate <= date '1998-09-02' group by l_returnflag order by l_returnflag"

// scalingJoinQuery probes the sliced lineitem scan against a packed
// orders build: the partitioned hash join's headline shape. Counts only,
// so auto and sequential execution must agree byte for byte.
const scalingJoinQuery = "select o_orderpriority, count(*) as n from lineitem, orders " +
	"where l_orderkey = o_orderkey group by o_orderpriority order by o_orderpriority"

// scalingSortQuery is the fused ORDER BY ... LIMIT shape: per-slice
// sorts, per-slice top-k truncation, one k-way merge. Sorts never
// re-associate values, so results are byte-identical too.
const scalingSortQuery = "select l_orderkey, l_extendedprice from lineitem " +
	"order by l_extendedprice desc, l_orderkey limit 100"

// bestOfQ runs q n times under the given options and returns the
// fastest run plus the last result.
func bestOfQ(t *testing.T, db *stethoscope.DB, q string, n int, opts ...stethoscope.ExecOption) (time.Duration, *stethoscope.Result) {
	t.Helper()
	best := time.Duration(1<<62 - 1)
	var res *stethoscope.Result
	for i := 0; i < n; i++ {
		r, err := db.Exec(context.Background(), q, opts...)
		if err != nil {
			t.Fatalf("Exec: %v", err)
		}
		if r.Stats.Elapsed < best {
			best = r.Stats.Elapsed
		}
		res = r
	}
	return best, res
}

// TestAutoParallelSpeedup is the acceptance gate of the adaptive
// execution path: on a machine with at least 4 cores, the auto-tuned
// aggregate query must run at least 2x faster than fully sequential
// execution, with byte-identical results (its aggregates are exact
// under mergetable recombination). On fewer cores (where auto
// legitimately resolves to little or no parallelism) and under the race
// detector the ratio assertion is skipped but result equality still
// holds. The sort above the 3-row group-by output is packed, so the
// fan-out is sized from the scan below it.
func TestAutoParallelSpeedup(t *testing.T) {
	speedupGate(t, scalingQuery, "scan", 2.0)
}

// speedupGate runs q sequentially and auto-tuned, requires byte-
// identical results and the expected cost shape in the tuning note,
// and — on >= 4 cores outside the race detector — asserts the auto
// path is at least minRatio faster.
func speedupGate(t *testing.T, q, wantShape string, minRatio float64) {
	t.Helper()
	if testing.Short() {
		t.Skip("scaling measurement skipped in -short mode")
	}
	db, err := stethoscope.Open(
		stethoscope.WithScaleFactor(0.05), stethoscope.WithSeed(42),
		stethoscope.WithPartitions(stethoscope.Auto),
		stethoscope.WithWorkers(stethoscope.Auto))
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	const rounds = 5
	seqBest, seqRes := bestOfQ(t, db, q, rounds, stethoscope.ExecPartitions(1), stethoscope.ExecWorkers(1))
	autoBest, autoRes := bestOfQ(t, db, q, rounds)

	var seqBuf, autoBuf strings.Builder
	if err := seqRes.WriteTable(&seqBuf); err != nil {
		t.Fatal(err)
	}
	if err := autoRes.WriteTable(&autoBuf); err != nil {
		t.Fatal(err)
	}
	if seqBuf.String() != autoBuf.String() {
		t.Fatalf("auto execution result differs from sequential:\nseq:\n%s\nauto:\n%s", seqBuf.String(), autoBuf.String())
	}
	// The cost shape that sized the fan-out must be recorded whatever
	// the core count — a single-core "-> sequential" note still says
	// which model produced it.
	if !strings.Contains(autoRes.Stats.TuneReason, "shape="+wantShape) {
		t.Errorf("tuning reason %q lacks shape=%s", autoRes.Stats.TuneReason, wantShape)
	}

	procs := runtime.GOMAXPROCS(0)
	ratio := float64(seqBest) / float64(autoBest)
	t.Logf("procs=%d auto: partitions=%d workers=%d (%s) seq=%v auto=%v ratio=%.2fx",
		procs, autoRes.Stats.Partitions, autoRes.Stats.Workers, autoRes.Stats.TuneReason,
		seqBest, autoBest, ratio)
	if procs < 4 {
		t.Skipf("speedup ratio needs >= 4 cores, have %d", procs)
	}
	if raceEnabled {
		t.Skip("speedup ratio skipped under the race detector")
	}
	if autoRes.Stats.Partitions < 2 || autoRes.Stats.Workers < 2 {
		t.Fatalf("auto resolved to partitions=%d workers=%d on a %d-core machine",
			autoRes.Stats.Partitions, autoRes.Stats.Workers, procs)
	}
	if ratio < minRatio {
		t.Errorf("auto-parallel speedup = %.2fx, want >= %.1fx (seq %v, auto %v)", ratio, minRatio, seqBest, autoBest)
	}
}

// TestAutoParallelJoinSpeedup is the acceptance gate of join mitosis:
// the build-once/probe-per-slice hash join must run at least 2x faster
// auto-tuned than fully sequential on a >= 4-core machine, with
// byte-identical results and a fan-out sized from the probe side.
func TestAutoParallelJoinSpeedup(t *testing.T) {
	speedupGate(t, scalingJoinQuery, "join-probe", 2.0)
}

// TestAutoParallelSortSpeedup gates sort mitosis: per-slice sorts with
// fused top-k truncation ahead of the k-way merge. The merge and the
// final projections are sequential (Amdahl), so the floor is lower than
// the join's.
func TestAutoParallelSortSpeedup(t *testing.T) {
	speedupGate(t, scalingSortQuery, "sort", 1.5)
}
