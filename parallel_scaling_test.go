package stethoscope_test

import (
	"context"
	"runtime"
	"strings"
	"testing"
	"time"

	"stethoscope"
)

// scalingQuery is an aggregate/group-by TPC-H pipeline whose merged
// aggregates (count, min, max) are exact under mitosis, so auto and
// sequential execution must agree byte for byte.
const scalingQuery = "select l_returnflag, count(*) as n, min(l_quantity) as mn, max(l_quantity) as mx " +
	"from lineitem where l_shipdate <= date '1998-09-02' group by l_returnflag order by l_returnflag"

// bestOf runs the query n times under the given options and returns the
// fastest run plus the last result.
func bestOf(t *testing.T, db *stethoscope.DB, n int, opts ...stethoscope.ExecOption) (time.Duration, *stethoscope.Result) {
	t.Helper()
	best := time.Duration(1<<62 - 1)
	var res *stethoscope.Result
	for i := 0; i < n; i++ {
		r, err := db.Exec(context.Background(), scalingQuery, opts...)
		if err != nil {
			t.Fatalf("Exec: %v", err)
		}
		if r.Stats.Elapsed < best {
			best = r.Stats.Elapsed
		}
		res = r
	}
	return best, res
}

// TestAutoParallelSpeedup is the acceptance gate of the adaptive
// execution path: on a machine with at least 4 cores, the auto-tuned
// aggregate query must run at least 2x faster than fully sequential
// execution, with byte-identical results. On fewer cores (where auto
// legitimately resolves to little or no parallelism) and under the race
// detector the ratio assertion is skipped but result equality still
// holds.
func TestAutoParallelSpeedup(t *testing.T) {
	if testing.Short() {
		t.Skip("scaling measurement skipped in -short mode")
	}
	db, err := stethoscope.Open(
		stethoscope.WithScaleFactor(0.05), stethoscope.WithSeed(42),
		stethoscope.WithPartitions(stethoscope.Auto),
		stethoscope.WithWorkers(stethoscope.Auto))
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	const rounds = 5
	seqBest, seqRes := bestOf(t, db, rounds, stethoscope.ExecPartitions(1), stethoscope.ExecWorkers(1))
	autoBest, autoRes := bestOf(t, db, rounds)

	// Results must be byte-identical regardless of core count: the
	// query's aggregates are exact under mergetable recombination.
	var seqBuf, autoBuf strings.Builder
	if err := seqRes.WriteTable(&seqBuf); err != nil {
		t.Fatal(err)
	}
	if err := autoRes.WriteTable(&autoBuf); err != nil {
		t.Fatal(err)
	}
	if seqBuf.String() != autoBuf.String() {
		t.Fatalf("auto execution result differs from sequential:\nseq:\n%s\nauto:\n%s", seqBuf.String(), autoBuf.String())
	}

	procs := runtime.GOMAXPROCS(0)
	t.Logf("procs=%d auto: partitions=%d workers=%d (%s) seq=%v auto=%v ratio=%.2fx",
		procs, autoRes.Stats.Partitions, autoRes.Stats.Workers, autoRes.Stats.TuneReason,
		seqBest, autoBest, float64(seqBest)/float64(autoBest))
	if procs < 4 {
		t.Skipf("speedup ratio needs >= 4 cores, have %d", procs)
	}
	if raceEnabled {
		t.Skip("speedup ratio skipped under the race detector")
	}
	if autoRes.Stats.Partitions < 2 || autoRes.Stats.Workers < 2 {
		t.Fatalf("auto resolved to partitions=%d workers=%d on a %d-core machine",
			autoRes.Stats.Partitions, autoRes.Stats.Workers, procs)
	}
	if ratio := float64(seqBest) / float64(autoBest); ratio < 2.0 {
		t.Errorf("auto-parallel speedup = %.2fx, want >= 2.0x (seq %v, auto %v)", ratio, seqBest, autoBest)
	}
}
