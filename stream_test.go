// Tests of the streaming results API: DB.Stream yields rows before the
// run completes, totals match Exec, materializing plans still stream as
// one batch, and early Close releases the run cleanly.
package stethoscope_test

import (
	"context"
	"testing"

	"stethoscope"
)

// TestStreamYieldsBeforeCompletion is the streaming-progress check: the
// first rows must be consumable while the query is still executing.
// The 64-row morsel splits the lineitem scan into hundreds of batches
// and the iterator's unbuffered handshake means the engine cannot
// finish until the consumer drains them — so observing InFlight=1 after
// the first row proves rows arrived before full materialization.
func TestStreamYieldsBeforeCompletion(t *testing.T) {
	db := openTestDB(t)
	it, err := db.Stream(context.Background(), "select l_orderkey from lineitem",
		stethoscope.ExecMorselRows(64), stethoscope.ExecWorkers(4))
	if err != nil {
		t.Fatalf("Stream: %v", err)
	}
	defer it.Close()
	if !it.Next() {
		t.Fatalf("no first row: %v", it.Err())
	}
	if got := db.Stats().InFlight; got != 1 {
		t.Errorf("InFlight = %d after first row, want 1 (run still executing)", got)
	}
	n := 1
	for it.Next() {
		n++
	}
	if err := it.Err(); err != nil {
		t.Fatal(err)
	}
	res, err := db.Exec(context.Background(), "select l_orderkey from lineitem")
	if err != nil {
		t.Fatal(err)
	}
	if n != res.RowCount() {
		t.Errorf("streamed %d rows, Exec materialized %d", n, res.RowCount())
	}
}

// TestStreamScanAndColumns: typed Scan destinations and the up-front
// column names.
func TestStreamScanAndColumns(t *testing.T) {
	db := openTestDB(t)
	it, err := db.Stream(context.Background(),
		"select l_orderkey, l_tax, l_shipmode from lineitem where l_partkey=1",
		stethoscope.ExecMorselRows(512))
	if err != nil {
		t.Fatalf("Stream: %v", err)
	}
	defer it.Close()
	want := []string{"l_orderkey", "l_tax", "l_shipmode"}
	cols := it.Columns()
	if len(cols) != len(want) {
		t.Fatalf("Columns = %v, want %v", cols, want)
	}
	for i := range want {
		if cols[i] != want[i] {
			t.Fatalf("Columns = %v, want %v", cols, want)
		}
	}
	n := 0
	for it.Next() {
		var key int64
		var tax float64
		var mode string
		if err := it.Scan(&key, &tax, &mode); err != nil {
			t.Fatal(err)
		}
		if key < 1 || mode == "" {
			t.Fatalf("row %d: key=%d mode=%q", n, key, mode)
		}
		n++
	}
	if err := it.Err(); err != nil {
		t.Fatal(err)
	}
	if n != 32 {
		t.Errorf("streamed %d rows, want 32 (SF=0.005, seed=42)", n)
	}
}

// TestStreamMaterializingPlan: plans that cannot stream incrementally
// (sorts, merged aggregates) still serve the iterator — as one batch —
// through the range-over-func form.
func TestStreamMaterializingPlan(t *testing.T) {
	db := openTestDB(t)
	it, err := db.Stream(context.Background(),
		"select l_shipmode, count(*) as n from lineitem group by l_shipmode order by l_shipmode")
	if err != nil {
		t.Fatalf("Stream: %v", err)
	}
	var rows [][]any
	for row := range it.All() {
		rows = append(rows, row)
	}
	if err := it.Err(); err != nil {
		t.Fatal(err)
	}
	if len(rows) != 7 {
		t.Fatalf("streamed %d group rows, want 7", len(rows))
	}
	total := int64(0)
	for _, r := range rows {
		total += r[1].(int64)
	}
	var want int64
	it2, err := db.Stream(context.Background(), "select count(*) as n from lineitem")
	if err != nil {
		t.Fatal(err)
	}
	defer it2.Close()
	if !it2.Next() {
		t.Fatalf("count stream empty: %v", it2.Err())
	}
	if err := it2.Scan(&want); err != nil {
		t.Fatal(err)
	}
	if total != want {
		t.Errorf("group counts sum to %d, count(*) says %d", total, want)
	}
}

// TestStreamEarlyClose: Close mid-iteration cancels the run without
// error and without leaking the producer goroutine (the -race runs
// would flag one).
func TestStreamEarlyClose(t *testing.T) {
	db := openTestDB(t)
	it, err := db.Stream(context.Background(), "select l_orderkey from lineitem",
		stethoscope.ExecMorselRows(64), stethoscope.ExecWorkers(4))
	if err != nil {
		t.Fatalf("Stream: %v", err)
	}
	if !it.Next() {
		t.Fatalf("no first row: %v", it.Err())
	}
	if err := it.Close(); err != nil {
		t.Fatalf("Close after partial read: %v", err)
	}
	if it.Next() {
		t.Error("Next succeeded after Close")
	}
	// The DB still serves queries normally afterwards.
	if _, err := db.Exec(context.Background(), figure1Query); err != nil {
		t.Fatalf("Exec after early stream close: %v", err)
	}
}
