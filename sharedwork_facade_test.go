// Facade-level tests of shared-work serving: byte-identical results
// under single-flight dedup, deterministic attach semantics, the
// WithResultCache lifecycle (hits, TTL expiry with a fake clock,
// invalidation on Persist and dataset swap), and concurrent Explain
// stability. The CI race job runs this file under -race.
package stethoscope

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"stethoscope/internal/sharedwork"
)

// tableBytes renders a result to the exact bytes a client would see —
// the unit of the "shared results are byte-identical" claim.
func tableBytes(t *testing.T, r *Result) string {
	t.Helper()
	var sb strings.Builder
	if err := r.WriteTable(&sb); err != nil {
		t.Fatal(err)
	}
	return sb.String()
}

// waitFor polls cond for up to two seconds.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestSharedExecByteEquality is the equality sweep: for a scan, a
// join, a sort, and a grouped aggregate, at workers 1/4/8, a burst of
// concurrent identical Exec calls — whichever of them lead, attach, or
// interleave — must each return a result byte-identical to an unshared
// sequential execution at the same compile geometry. A sequential call
// never shares (the flight dedupes concurrency, it never caches; no
// result cache is configured), so the baselines are unshared by
// construction.
func TestSharedExecByteEquality(t *testing.T) {
	db, err := Open(WithScaleFactor(0.002))
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	ctx := context.Background()
	queries := []string{
		// scan
		"select l_orderkey, l_tax from lineitem where l_quantity > 30",
		// join
		"select o_orderpriority, count(*) as n from lineitem, orders where l_orderkey = o_orderkey group by o_orderpriority order by o_orderpriority",
		// sort
		"select l_orderkey, l_extendedprice from lineitem where l_quantity > 45 order by l_extendedprice desc, l_orderkey limit 100",
		// aggregate (float sums: partition geometry is pinned, so
		// association is identical across runs)
		"select l_returnflag, sum(l_quantity) as s, sum(l_extendedprice) as rev, count(*) as n from lineitem group by l_returnflag order by l_returnflag",
	}
	execs := 0
	for _, workers := range []int{1, 4, 8} {
		for qi, q := range queries {
			opts := []ExecOption{ExecPartitions(4), ExecWorkers(workers)}
			base, err := db.Exec(ctx, q, opts...)
			if err != nil {
				t.Fatalf("workers=%d query %d: baseline: %v", workers, qi, err)
			}
			execs++
			want := tableBytes(t, base)
			const clients = 8
			results := make([]*Result, clients)
			errs := make([]error, clients)
			start := make(chan struct{})
			var wg sync.WaitGroup
			for c := 0; c < clients; c++ {
				wg.Add(1)
				go func(c int) {
					defer wg.Done()
					<-start
					results[c], errs[c] = db.Exec(ctx, q, opts...)
				}(c)
			}
			close(start)
			wg.Wait()
			execs += clients
			for c := 0; c < clients; c++ {
				if errs[c] != nil {
					t.Fatalf("workers=%d query %d client %d: %v", workers, qi, c, errs[c])
				}
				if got := tableBytes(t, results[c]); got != want {
					t.Fatalf("workers=%d query %d client %d (shared=%q): result bytes differ from unshared baseline",
						workers, qi, c, results[c].Stats.Shared)
				}
			}
		}
	}
	st := db.Stats()
	if st.Execs != int64(execs) {
		t.Fatalf("execs = %d, want %d (every shared call still completes)", st.Execs, execs)
	}
	if st.SharedLed+st.SharedAttached != int64(execs) {
		t.Fatalf("led %d + attached %d != execs %d", st.SharedLed, st.SharedAttached, execs)
	}
}

// TestSharedExecByteEqualityMorsel repeats the sweep's core claim
// under the morsel-driven lowering, where the sharing key additionally
// carries the morsel size.
func TestSharedExecByteEqualityMorsel(t *testing.T) {
	db, err := Open(WithScaleFactor(0.002))
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	ctx := context.Background()
	q := "select l_returnflag, sum(l_extendedprice) as rev, count(*) as n from lineitem where l_quantity > 10 group by l_returnflag order by l_returnflag"
	opts := []ExecOption{ExecPartitions(4), ExecWorkers(4), ExecMorselRows(64)}
	base, err := db.Exec(ctx, q, opts...)
	if err != nil {
		t.Fatal(err)
	}
	want := tableBytes(t, base)
	const clients = 8
	var wg sync.WaitGroup
	start := make(chan struct{})
	fail := make(chan string, clients)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			r, err := db.Exec(ctx, q, opts...)
			if err != nil {
				fail <- err.Error()
				return
			}
			if tableBytes(t, r) != want {
				fail <- fmt.Sprintf("shared=%q result differs from unshared baseline", r.Stats.Shared)
			}
		}()
	}
	close(start)
	wg.Wait()
	close(fail)
	for msg := range fail {
		t.Fatal(msg)
	}
}

// TestSharedExecAttachDeterministic pins the attach contract without
// racing real executions: a leader is planted in the DB's flight under
// the exact key Exec builds, held open on a gate, and released only
// after a concurrent Exec has verifiably attached. The follower's
// Result must carry the leader's outcome — same result table, the
// leader's resolved settings and history id, Stats.Shared = "attached"
// — and the attach must land in DB.Stats.
func TestSharedExecAttachDeterministic(t *testing.T) {
	db, err := Open(WithScaleFactor(0.001))
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	ctx := context.Background()
	q := "select l_tax from lineitem where l_partkey=1"
	solo, err := db.Exec(ctx, q)
	if err != nil {
		t.Fatal(err)
	}
	key := sharedwork.Key{SQL: q, Partitions: 1, Passes: db.passSpec}
	outcome := &sharedwork.Outcome{
		Res:        solo.res,
		Elapsed:    5 * time.Millisecond,
		RunID:      77,
		Partitions: 1,
		Workers:    3,
		TuneReason: "planted leader",
	}
	gate := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	var leaderWaiters int
	go func() {
		defer wg.Done()
		_, _, attached, waiters := db.shared.Flight.Do(ctx, key, func() (*sharedwork.Outcome, error) {
			<-gate
			return outcome, nil
		})
		if attached {
			t.Error("planted leader reported attached")
		}
		leaderWaiters = waiters
	}()
	waitFor(t, "leader registration", func() bool { return db.shared.Flight.InFlight() == 1 })

	type res struct {
		r   *Result
		err error
	}
	done := make(chan res, 1)
	go func() {
		r, err := db.Exec(ctx, q)
		done <- res{r, err}
	}()
	waitFor(t, "follower attach", func() bool { return db.Stats().SharedAttached == 1 })
	close(gate)
	follower := <-done
	wg.Wait()
	if follower.err != nil {
		t.Fatal(follower.err)
	}
	r := follower.r
	if r.Stats.Shared != "attached" {
		t.Fatalf("Stats.Shared = %q, want attached", r.Stats.Shared)
	}
	if r.Stats.RunID != 77 || r.Stats.Workers != 3 || r.Stats.TuneReason != "planted leader" {
		t.Fatalf("follower did not echo the leader's outcome: %+v", r.Stats)
	}
	if r.res != solo.res {
		t.Fatal("follower result table is not the shared outcome's table")
	}
	if leaderWaiters != 1 {
		t.Fatalf("leader saw %d waiters, want 1", leaderWaiters)
	}
	if tableBytes(t, r) != tableBytes(t, solo) {
		t.Fatal("attached result bytes differ")
	}
}

// TestResultCacheServesRepeats covers the WithResultCache happy path:
// the second identical statement is served from the cache,
// byte-identical, marked Shared = "resultcache", echoing the producing
// run's settings; a different compile geometry is a different key.
func TestResultCacheServesRepeats(t *testing.T) {
	db, err := Open(WithScaleFactor(0.001), WithResultCache(8, 0))
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	ctx := context.Background()
	q := "select l_shipmode, count(*) as n from lineitem group by l_shipmode order by l_shipmode"
	r1, err := db.Exec(ctx, q)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Stats.Shared != "" {
		t.Fatalf("first execution Shared = %q, want fresh", r1.Stats.Shared)
	}
	r2, err := db.Exec(ctx, q)
	if err != nil {
		t.Fatal(err)
	}
	if r2.Stats.Shared != "resultcache" {
		t.Fatalf("repeat Shared = %q, want resultcache", r2.Stats.Shared)
	}
	if tableBytes(t, r2) != tableBytes(t, r1) {
		t.Fatal("cached result bytes differ")
	}
	// The worker count is not part of result identity: a different
	// worker request still hits, echoing the producer's resolved count.
	r3, err := db.Exec(ctx, q, ExecWorkers(4))
	if err != nil {
		t.Fatal(err)
	}
	if r3.Stats.Shared != "resultcache" || r3.Stats.Workers != r1.Stats.Workers {
		t.Fatalf("worker variation: Shared=%q Workers=%d, want resultcache with producer's %d",
			r3.Stats.Shared, r3.Stats.Workers, r1.Stats.Workers)
	}
	// Partition geometry is part of result identity: different key.
	r4, err := db.Exec(ctx, q, ExecPartitions(2))
	if err != nil {
		t.Fatal(err)
	}
	if r4.Stats.Shared != "" {
		t.Fatalf("partition variation served shared result (%q); geometry must key the cache", r4.Stats.Shared)
	}
	st := db.Stats()
	if st.ResultCache.Hits != 2 || st.ResultCache.Len != 2 {
		t.Fatalf("result-cache stats = %+v, want 2 hits and 2 entries", st.ResultCache)
	}
}

// TestResultCacheInvalidation re-executes after the two dataset
// boundaries the ISSUE names — Persist, and a Persist + OpenPath swap
// — and proves no stale rows are served across either.
func TestResultCacheInvalidation(t *testing.T) {
	db, err := Open(WithScaleFactor(0.001), WithResultCache(8, 0))
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	ctx := context.Background()
	q := "select l_returnflag, count(*) as n from lineitem group by l_returnflag order by l_returnflag"
	r1, err := db.Exec(ctx, q)
	if err != nil {
		t.Fatal(err)
	}
	want := tableBytes(t, r1)
	if r2, err := db.Exec(ctx, q); err != nil || r2.Stats.Shared != "resultcache" {
		t.Fatalf("warm-up repeat: shared=%v err=%v", r2.Stats.Shared, err)
	}

	dir := t.TempDir()
	if err := db.Persist(dir); err != nil {
		t.Fatal(err)
	}
	r3, err := db.Exec(ctx, q)
	if err != nil {
		t.Fatal(err)
	}
	if r3.Stats.Shared != "" {
		t.Fatalf("post-Persist execution served %q; Persist must invalidate the result cache", r3.Stats.Shared)
	}
	if tableBytes(t, r3) != want {
		t.Fatal("post-Persist re-execution returned different rows")
	}
	if inv := db.Stats().ResultCache.Invalidations; inv < 1 {
		t.Fatalf("invalidations = %d, want >= 1", inv)
	}

	// Dataset swap: a DB opened over the persisted directory starts
	// with an empty result cache and must re-execute, not inherit.
	db2, err := OpenPath(dir, WithResultCache(8, 0))
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	r4, err := db2.Exec(ctx, q)
	if err != nil {
		t.Fatal(err)
	}
	if r4.Stats.Shared != "" {
		t.Fatalf("first execution on swapped dataset served %q", r4.Stats.Shared)
	}
	if tableBytes(t, r4) != want {
		t.Fatal("swapped dataset returned different rows for the same data")
	}
	if r5, err := db2.Exec(ctx, q); err != nil || r5.Stats.Shared != "resultcache" {
		t.Fatalf("swapped-dataset repeat: shared=%v err=%v", r5.Stats.Shared, err)
	}
}

// TestResultCacheTTLExpiryFacade drives the TTL through the facade
// with a fake clock: within the TTL the repeat is served, past it the
// statement re-executes and the expiry is counted.
func TestResultCacheTTLExpiryFacade(t *testing.T) {
	db, err := Open(WithScaleFactor(0.001), WithResultCache(4, time.Minute))
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	now := time.Unix(1_000_000, 0)
	db.shared.Cache.SetClock(func() time.Time { return now })
	ctx := context.Background()
	q := "select count(*) from lineitem"
	if _, err := db.Exec(ctx, q); err != nil {
		t.Fatal(err)
	}
	now = now.Add(30 * time.Second)
	r2, err := db.Exec(ctx, q)
	if err != nil {
		t.Fatal(err)
	}
	if r2.Stats.Shared != "resultcache" {
		t.Fatalf("repeat within TTL: Shared = %q", r2.Stats.Shared)
	}
	now = now.Add(31 * time.Second) // 61s past insertion: expired
	r3, err := db.Exec(ctx, q)
	if err != nil {
		t.Fatal(err)
	}
	if r3.Stats.Shared != "" {
		t.Fatalf("repeat past TTL served %q; entry must have expired", r3.Stats.Shared)
	}
	if exp := db.Stats().ResultCache.Expirations; exp != 1 {
		t.Fatalf("expirations = %d, want 1", exp)
	}
	// The re-execution re-populated the cache with a fresh TTL.
	if r4, err := db.Exec(ctx, q); err != nil || r4.Stats.Shared != "resultcache" {
		t.Fatalf("post-expiry repeat: shared=%v err=%v", r4.Stats.Shared, err)
	}
}

// TestExplainConcurrentCoalesce: concurrent identical Explain calls
// coalesce through the planner's single-flight instead of racing to
// populate the plan cache — under -race this pins the absence of the
// old compile race; the once-only-compile property itself is pinned by
// internal/planner's TestCompileFlightCoalescesConcurrentMisses.
func TestExplainConcurrentCoalesce(t *testing.T) {
	db, err := Open(WithScaleFactor(0.001))
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	q := "select l_orderkey, l_extendedprice from lineitem where l_quantity > 40 order by l_extendedprice desc limit 10"
	const callers = 16
	listings := make([]string, callers)
	errs := make([]error, callers)
	start := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-start
			listings[i], errs[i] = db.Explain(q)
		}(i)
	}
	close(start)
	wg.Wait()
	for i := 0; i < callers; i++ {
		if errs[i] != nil {
			t.Fatal(errs[i])
		}
		if listings[i] != listings[0] {
			t.Fatalf("caller %d saw a different listing", i)
		}
	}
	if st := db.Stats(); st.Cache.Len != 1 {
		t.Fatalf("plan cache holds %d entries after %d identical Explains, want 1", st.Cache.Len, callers)
	}
}
