GO ?= go

.PHONY: verify vet build test bench examples

verify: vet build test

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

bench:
	$(GO) test -bench . -benchtime 1x ./...

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/offline-replay
	$(GO) run ./examples/online-monitor
	$(GO) run ./examples/multicore-analysis
	$(GO) run ./examples/tpch-workload
