GO ?= go
SHA ?= $(shell git rev-parse --short HEAD 2>/dev/null || echo local)

.PHONY: verify fmt vet build test race bench bench-smoke bench-record examples

verify: fmt vet build test race bench-smoke

fmt:
	@out=$$(gofmt -l .); \
	if [ -n "$$out" ]; then echo "gofmt needed on:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# race mirrors the CI race job: the whole tree under the race detector,
# including the 32-goroutine mixed-workload stress test.
race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench . -benchtime 1x ./...

# bench-smoke mirrors the CI bench-smoke job: every benchmark executes
# at least once, with tests excluded.
bench-smoke:
	$(GO) test -bench . -benchtime 1x -run '^$$' ./...

# bench-record mirrors the CI bench-record job: the experiment
# benchmarks, 3 repetitions, converted to BENCH_<sha>.json. When a
# previous artifact is saved as BENCH_baseline.json, a per-benchmark
# delta summary is printed (benchjson -baseline).
bench-record:
	$(GO) test -bench 'BenchmarkF|BenchmarkE|BenchmarkPlanCacheHit|BenchmarkConcurrentExec|BenchmarkHistory|BenchmarkParallelScaling' \
		-benchtime 1x -count 3 -run '^$$' . | $(GO) run ./cmd/benchjson -baseline BENCH_baseline.json > BENCH_$(SHA).json
	@echo wrote BENCH_$(SHA).json

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/offline-replay
	$(GO) run ./examples/online-monitor
	$(GO) run ./examples/multicore-analysis
	$(GO) run ./examples/tpch-workload
