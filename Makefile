GO ?= go
SHA ?= $(shell git rev-parse --short HEAD 2>/dev/null || echo local)

# Perf-regression gate policy; keep in sync with the bench-gate step in
# .github/workflows/ci.yml. GATE is the default allowed regression in
# percent (generous: bench-record runs -benchtime 1x -count 3 on shared
# runners). GATE_MIN_NS is the noise floor — benchmarks measuring below
# it are timer jitter at 1x benchtime and are not gated. GATE_OVERRIDES
# tightens stable ms-scale benchmarks and loosens the noise-prone
# concurrency/network ones.
GATE ?= 25
GATE_MIN_NS ?= 100000
GATE_OVERRIDES ?= BenchmarkHistoryTopN=15,BenchmarkConcurrentExec=50,BenchmarkE8UDPStream=50,BenchmarkE8UDPStreamBatched=50,BenchmarkPeakRSS=60,BenchmarkMetricsOverhead=15,BenchmarkSharedWork=50

# Pinned static-analysis tool versions; keep in sync with the lint job
# in .github/workflows/ci.yml.
STATICCHECK_VERSION ?= v0.6.1
GOVULNCHECK_VERSION ?= v1.1.4

.PHONY: verify fmt vet build test race lint stethovet docscheck bench bench-smoke bench-record examples

verify: fmt vet build test race bench-smoke

fmt:
	@out=$$(gofmt -l .); \
	if [ -n "$$out" ]; then echo "gofmt needed on:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# race mirrors the CI race job: the whole tree under the race detector,
# including the 32-goroutine mixed-workload stress test.
race:
	$(GO) test -race ./...

# lint mirrors the CI lint job: staticcheck + govulncheck at pinned
# versions (fetches the tools on first use; not part of verify so
# offline verification keeps working), then stethovet — the project's
# own invariant analyzers (cmd/stethovet; in-tree, needs no network) —
# and docscheck, which fails the run when README/DESIGN/ARCHITECTURE
# reference identifiers or paths that no longer exist in the tree.
# staticcheck reads staticcheck.conf at the repo root.
lint:
	$(GO) run honnef.co/go/tools/cmd/staticcheck@$(STATICCHECK_VERSION) ./...
	$(GO) run golang.org/x/vuln/cmd/govulncheck@$(GOVULNCHECK_VERSION) ./...
	$(GO) run ./cmd/stethovet ./...
	$(GO) run ./cmd/docscheck

# stethovet alone: the in-tree analyzers work offline, so they can run
# even where the pinned external tools cannot be fetched.
stethovet:
	$(GO) run ./cmd/stethovet ./...

# docscheck alone: the documentation linter (in-tree, offline).
docscheck:
	$(GO) run ./cmd/docscheck

bench:
	$(GO) test -bench . -benchtime 1x ./...

# bench-smoke mirrors the CI bench-smoke job: every benchmark executes
# at least once, with tests excluded.
bench-smoke:
	$(GO) test -bench . -benchtime 1x -run '^$$' ./...

# bench-record mirrors the CI bench-record job: the experiment
# benchmarks, 3 repetitions, converted to BENCH_<sha>.json. When a
# previous artifact is saved as BENCH_baseline.json, a per-benchmark
# delta summary is printed and then ENFORCED: any benchmark more than
# GATE percent slower than the baseline fails the target (benchjson
# -gate), unless the HEAD commit message contains [bench-skip]. Without
# a baseline both the summary and the gate are skipped. The bench run
# writes to bench.txt in its own command (not a pipe): POSIX sh has no
# pipefail, and a crashed benchmark must fail the target instead of
# gating a truncated record.
bench-record:
	$(GO) test -bench 'BenchmarkF|BenchmarkE|BenchmarkPlanCacheHit|BenchmarkConcurrentExec|BenchmarkHistory|BenchmarkParallel|BenchmarkOpen|BenchmarkPeakRSS|BenchmarkMetricsOverhead|BenchmarkSharedWork' \
		-benchtime 1x -count 3 -run '^$$' . > bench.txt
	$(GO) run ./cmd/benchjson -baseline BENCH_baseline.json < bench.txt > BENCH_$(SHA).json
	@echo wrote BENCH_$(SHA).json
	@if git log -1 --format=%B 2>/dev/null | grep -qF '[bench-skip]'; then \
		echo "bench gate skipped: [bench-skip] in commit message"; \
	elif [ -f BENCH_baseline.json ]; then \
		$(GO) run ./cmd/benchjson -baseline BENCH_baseline.json -gate $(GATE) -gate-min-ns $(GATE_MIN_NS) -gate-override '$(GATE_OVERRIDES)' < bench.txt > /dev/null; \
	else \
		echo "bench gate skipped: no BENCH_baseline.json"; \
	fi

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/offline-replay
	$(GO) run ./examples/online-monitor
	$(GO) run ./examples/multicore-analysis
	$(GO) run ./examples/tpch-workload
