package stethoscope

import (
	"bufio"
	"io"
	"sync"
	"time"

	"stethoscope/internal/core"
	"stethoscope/internal/dot"
	"stethoscope/internal/engine"
	"stethoscope/internal/mal"
	"stethoscope/internal/server"
	"stethoscope/internal/trace"
)

// traceView provides the trace-derived reports shared by Result (fresh
// executions) and Analysis (sessions over dot + trace content). The
// per-pc trace index is built lazily on first use: a serving workload
// that executes thousands of queries and only reads rows should not pay
// for indexing traces it never analyzes.
type traceView struct {
	mu     sync.Mutex
	events []Event      // pending events when the store is built lazily
	tstore *trace.Store // built on first store() call (or set directly)
}

// store returns the trace store, building it on first use.
func (t *traceView) store() *trace.Store {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.tstore == nil {
		t.tstore = trace.FromEventsOwned(t.events)
		t.events = nil
	}
	return t.tstore
}

// Events returns the profiler events in trace order.
func (t *traceView) Events() []Event { return t.store().Events() }

// TraceLen returns the number of trace events.
func (t *traceView) TraceLen() int { return t.store().Len() }

// Costly returns the k slowest instructions — "where the time went".
func (t *traceView) Costly(k int) []CostlyInstr { return core.TopCostly(t.store(), k) }

// Utilization summarizes multi-core usage (threads used, parallelism
// factor, per-thread busy time).
func (t *traceView) Utilization() Utilization { return core.Utilize(t.store()) }

// ModuleBreakdown returns busy time per MAL module, descending.
func (t *traceView) ModuleBreakdown() []ModuleStat { return core.ModuleBreakdown(t.store()) }

// ThreadTimeline returns each thread's busy segments (the Gantt chart).
func (t *traceView) ThreadTimeline() map[int][]Segment { return core.ThreadTimeline(t.store()) }

// BirdsEye clusters the trace into n buckets for the whole-run overview.
func (t *traceView) BirdsEye(n int) []Cluster { return core.BirdsEye(t.store(), n) }

// MemoryTimeline samples the estimated memory footprint over n points.
func (t *traceView) MemoryTimeline(n int) []MemPoint { return core.MemoryTimeline(t.store(), n) }

// MicroReport renders the micro-analysis summary (module shares, memory
// peaks, data flow).
func (t *traceView) MicroReport() string { return core.MicroReport(t.store()) }

// Tooltip renders the hover text for one instruction.
func (t *traceView) Tooltip(pc int) string { return core.Tooltip(t.store(), pc) }

// Stats describes one execution.
type Stats struct {
	// Optimizer reports what the pipeline changed.
	Optimizer OptimizerStats
	// Elapsed is the wall-clock execution time.
	Elapsed time.Duration
	// Instructions is the optimized plan length.
	Instructions int
	// Partitions and Workers are the settings the query actually ran
	// with: Auto requests are resolved before execution, so these are
	// always concrete counts.
	Partitions int
	Workers    int
	// MorselRows is the morsel size the query ran with under the
	// morsel-driven lowering (ExecMorselRows / WithMorselRows), resolved
	// from Auto before execution. Zero when the query ran the static
	// lowering.
	MorselRows int
	// AutoTuned reports that Partitions and/or Workers were chosen
	// adaptively (the Auto sentinel); TuneReason records what the
	// selection saw and picked, e.g.
	// "auto: shape=scan rows=60175 procs=4 -> 8 partitions (...)".
	AutoTuned  bool
	TuneReason string
	// CacheHit reports whether compilation was skipped: the optimized
	// plan came from the shared plan cache, or a concurrent identical
	// compilation was coalesced through the planner's single-flight and
	// this call received its plan.
	CacheHit bool
	// Shared reports how the result was produced when this call did not
	// run the plan itself: "attached" (deduplicated onto a concurrent
	// identical statement's in-flight execution) or "resultcache"
	// (served from the WithResultCache outcome cache). Empty for calls
	// that executed. Shared results echo the producing run's resolved
	// settings (Partitions/Workers/MorselRows) and its RunID.
	Shared string
	// RunID is the durable query-history id of this execution, usable
	// with DB.History (Get, Replay, Compare). Zero when the DB was
	// opened without WithHistory.
	RunID uint64
}

// Result is one executed query: the optimized MAL plan, the profiler
// trace, the result table, and execution statistics. Pass it to Analyze
// to open the visual-analysis session.
type Result struct {
	traceView

	// Query is the SQL text as submitted.
	Query string
	// Stats describes the execution.
	Stats Stats

	plan *mal.Plan
	res  *engine.Result
}

// RowCount returns the result row count.
func (r *Result) RowCount() int {
	if r.res == nil {
		return 0
	}
	return r.res.Rows()
}

// Rows returns the result row count.
//
// Deprecated: use RowCount. Rows reads ambiguously next to the
// streaming API's row iterator; it remains as an alias.
func (r *Result) Rows() int { return r.RowCount() }

// Columns returns the result column names.
func (r *Result) Columns() []string {
	if r.res == nil {
		return nil
	}
	return r.res.Names
}

// WriteTable renders the result as tab-separated text with a header
// line.
func (r *Result) WriteTable(w io.Writer) error {
	bw := bufio.NewWriter(w)
	server.WriteResult(bw, r.res)
	return bw.Flush()
}

// PlanString returns the optimized MAL listing.
func (r *Result) PlanString() string { return r.plan.String() }

// Dot returns the plan's dot-file representation — the offline artifact
// Stethoscope's offline mode consumes (pair it with TraceText).
func (r *Result) Dot() string { return dot.Export(r.plan).Marshal() }

// TraceText returns the trace-file representation of the execution, one
// marshaled event per line.
func (r *Result) TraceText() string {
	var b []byte
	for _, e := range r.store().Events() {
		b = append(b, e.Marshal()...)
		b = append(b, '\n')
	}
	return string(b)
}

// WriteTrace writes the trace-file representation.
func (r *Result) WriteTrace(w io.Writer) error {
	_, err := io.WriteString(w, r.TraceText())
	return err
}
