package stethoscope_test

import (
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"stethoscope"
)

// persistedPair generates a DB at the given SF/seed, persists it, and
// reopens the persisted copy, so tests can compare the two sides.
func persistedPair(t *testing.T, sf float64, seed uint64, opts ...stethoscope.Option) (gen, per *stethoscope.DB, dir string) {
	t.Helper()
	dir = filepath.Join(t.TempDir(), "ds")
	gen, err := stethoscope.Open(append([]stethoscope.Option{
		stethoscope.WithScaleFactor(sf), stethoscope.WithSeed(seed)}, opts...)...)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	t.Cleanup(func() { gen.Close() })
	if err := gen.Persist(dir); err != nil {
		t.Fatalf("Persist: %v", err)
	}
	per, err = stethoscope.OpenPath(dir, opts...)
	if err != nil {
		t.Fatalf("OpenPath: %v", err)
	}
	t.Cleanup(func() { per.Close() })
	return gen, per, dir
}

func tableString(t *testing.T, db *stethoscope.DB, q string, opts ...stethoscope.ExecOption) string {
	t.Helper()
	res, err := db.Exec(context.Background(), q, opts...)
	if err != nil {
		t.Fatalf("Exec(%q): %v", q, err)
	}
	var buf strings.Builder
	if err := res.WriteTable(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

// TestOpenPathMatchesOpenByteForByte is the durability contract: a
// persisted dataset reopened with OpenPath must answer every query
// byte-identically to the generated database it snapshots — across the
// scan, join-probe, and sort pipeline shapes, and under sequential as
// well as parallel execution of the persisted side.
func TestOpenPathMatchesOpenByteForByte(t *testing.T) {
	gen, per, _ := persistedPair(t, 0.005, 7)
	queries := []string{
		scalingQuery,
		scalingJoinQuery,
		scalingSortQuery,
		"select count(*) as n from lineitem, orders where l_orderkey = o_orderkey",
		"select distinct l_shipmode from lineitem order by l_shipmode",
		"select n_name, r_name from nation, region where n_regionkey = r_regionkey order by n_name",
	}
	for _, q := range queries {
		want := tableString(t, gen, q, stethoscope.ExecPartitions(1), stethoscope.ExecWorkers(1))
		seq := tableString(t, per, q, stethoscope.ExecPartitions(1), stethoscope.ExecWorkers(1))
		par := tableString(t, per, q, stethoscope.ExecPartitions(4), stethoscope.ExecWorkers(4))
		if seq != want {
			t.Errorf("%q: persisted sequential result differs from generated", q)
		}
		if par != want {
			t.Errorf("%q: persisted parallel result differs from generated", q)
		}
	}
}

// TestOpenPathTablesAndMeta checks that the manifest alone reproduces
// the catalog shape (OpenPath reads no column data up front) and that
// generator provenance survives the round trip.
func TestOpenPathTablesAndMeta(t *testing.T) {
	gen, per, _ := persistedPair(t, 0.002, 11)
	gt, pt := gen.Tables(), per.Tables()
	if len(gt) != len(pt) {
		t.Fatalf("table count: generated %d, persisted %d", len(gt), len(pt))
	}
	for i := range gt {
		if gt[i] != pt[i] {
			t.Errorf("table %d: generated %+v, persisted %+v", i, gt[i], pt[i])
		}
	}
	meta := per.DataMeta()
	if meta["sf"] != "0.002" || meta["seed"] != "11" {
		t.Errorf("persisted meta %v does not carry sf/seed provenance", meta)
	}
}

// TestOpenPathRejectsGeneratorOptions pins the conflict rule: a
// persisted dataset fixes its contents, so WithScaleFactor/WithSeed
// alongside WithPath must fail loudly instead of being ignored.
func TestOpenPathRejectsGeneratorOptions(t *testing.T) {
	_, _, dir := persistedPair(t, 0.001, 42)
	if _, err := stethoscope.OpenPath(dir, stethoscope.WithScaleFactor(0.01)); err == nil {
		t.Fatal("OpenPath(WithScaleFactor) succeeded, want conflict error")
	}
	if _, err := stethoscope.OpenPath(dir, stethoscope.WithSeed(1)); err == nil {
		t.Fatal("OpenPath(WithSeed) succeeded, want conflict error")
	}
	// Execution options are orthogonal to the data source and must
	// still work.
	db, err := stethoscope.OpenPath(dir,
		stethoscope.WithPartitions(stethoscope.Auto), stethoscope.WithWorkers(stethoscope.Auto))
	if err != nil {
		t.Fatalf("OpenPath(partitions/workers): %v", err)
	}
	db.Close()
}

// TestOpenPathMissingDataset wants the friendly error, not a raw ENOENT.
func TestOpenPathMissingDataset(t *testing.T) {
	_, err := stethoscope.OpenPath(filepath.Join(t.TempDir(), "nope"))
	if err == nil {
		t.Fatal("OpenPath(empty dir) succeeded")
	}
	if !strings.Contains(err.Error(), "not a persisted dataset") {
		t.Fatalf("error %q does not explain the missing manifest", err)
	}
}

// TestOpenPathCorruptSegmentFailsLoudly flips one payload byte in one
// column file: opening still succeeds (only the manifest is read), a
// query over the damaged column fails with an error naming the segment
// file, and — because datasets must never silently answer wrong —
// queries over undamaged columns keep working.
func TestOpenPathCorruptSegmentFailsLoudly(t *testing.T) {
	_, _, dir := persistedPair(t, 0.002, 42)
	victim := filepath.Join(dir, "sys.lineitem.l_quantity.col")
	raw, err := os.ReadFile(victim)
	if err != nil {
		t.Fatalf("read column file: %v", err)
	}
	raw[len(raw)-1] ^= 0xFF // last payload byte of the final segment
	if err := os.WriteFile(victim, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	db, err := stethoscope.OpenPath(dir)
	if err != nil {
		t.Fatalf("OpenPath after corruption: %v (open must be manifest-only)", err)
	}
	defer db.Close()
	if _, err := db.Exec(context.Background(), "select min(l_quantity) as mn from lineitem"); err == nil {
		t.Fatal("query over corrupt column succeeded, want checksum error")
	} else if !strings.Contains(err.Error(), "l_quantity.col") {
		t.Fatalf("error %q does not name the damaged segment file", err)
	}
	// Undamaged columns still serve.
	got := tableString(t, db, "select count(*) as n from nation")
	if !strings.Contains(got, "25") {
		t.Fatalf("nation count from undamaged column wrong:\n%s", got)
	}
}

// TestOpenPathTornColumnFailsLoudly truncates a column file mid-frame:
// the scan must report the torn segment, never return short data.
func TestOpenPathTornColumnFailsLoudly(t *testing.T) {
	_, _, dir := persistedPair(t, 0.002, 42)
	victim := filepath.Join(dir, "sys.orders.o_orderpriority.col")
	info, err := os.Stat(victim)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(victim, info.Size()-5); err != nil {
		t.Fatal(err)
	}
	db, err := stethoscope.OpenPath(dir)
	if err != nil {
		t.Fatalf("OpenPath after truncation: %v", err)
	}
	defer db.Close()
	_, err = db.Exec(context.Background(), "select distinct o_orderpriority from orders order by o_orderpriority")
	if err == nil {
		t.Fatal("query over torn column succeeded, want torn-segment error")
	}
	if !strings.Contains(err.Error(), "o_orderpriority.col") || !strings.Contains(err.Error(), "torn") {
		t.Fatalf("error %q does not report the torn segment file", err)
	}
}

// TestPersistedDumpCSVMatches exercises the lazy-load path through
// DumpCSV, which reads whole tables rather than query plans.
func TestPersistedDumpCSVMatches(t *testing.T) {
	gen, per, _ := persistedPair(t, 0.002, 42)
	for _, table := range []string{"nation", "region", "supplier"} {
		var want, got strings.Builder
		if err := gen.DumpCSV(&want, table, 0); err != nil {
			t.Fatalf("DumpCSV generated %s: %v", table, err)
		}
		if err := per.DumpCSV(&got, table, 0); err != nil {
			t.Fatalf("DumpCSV persisted %s: %v", table, err)
		}
		if want.String() != got.String() {
			t.Errorf("%s: persisted CSV differs from generated", table)
		}
	}
}
