// Command tpchgen dumps the synthetic TPC-H tables as CSV, for
// inspecting the data substrate or feeding external tools.
//
// Usage:
//
//	tpchgen -table lineitem -sf 0.001 -limit 20
package main

import (
	"bufio"
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"
	"strings"

	"stethoscope/internal/sql"
	"stethoscope/internal/storage"
	"stethoscope/internal/tpch"
)

func main() {
	table := flag.String("table", "lineitem", "table to dump")
	sf := flag.Float64("sf", 0.001, "TPC-H scale factor")
	seed := flag.Uint64("seed", 42, "generator seed")
	limit := flag.Int("limit", 0, "max rows (0 = all)")
	flag.Parse()

	cat := storage.NewCatalog()
	if err := tpch.Load(cat, tpch.Config{SF: *sf, Seed: *seed}); err != nil {
		log.Fatalf("tpch: %v", err)
	}
	t, ok := cat.Table("sys", *table)
	if !ok {
		log.Fatalf("unknown table %q; have %s", *table, strings.Join(cat.TableNames(), ", "))
	}

	w := bufio.NewWriter(os.Stdout)
	defer w.Flush()
	names := make([]string, len(t.Columns))
	for i, c := range t.Columns {
		names[i] = c.Name
	}
	fmt.Fprintln(w, strings.Join(names, ","))
	rows := t.Rows()
	if *limit > 0 && *limit < rows {
		rows = *limit
	}
	for i := 0; i < rows; i++ {
		for c, col := range t.Columns {
			if c > 0 {
				w.WriteByte(',')
			}
			b, _ := t.Column(col.Name)
			switch col.Kind {
			case storage.Flt:
				w.WriteString(strconv.FormatFloat(b.FltAt(i), 'g', -1, 64))
			case storage.Str:
				w.WriteString(b.StrAt(i))
			case storage.Date:
				w.WriteString(sql.FormatDate(b.IntAt(i)))
			default:
				w.WriteString(strconv.FormatInt(b.IntAt(i), 10))
			}
		}
		w.WriteByte('\n')
	}
}
