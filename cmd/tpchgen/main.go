// Command tpchgen dumps the synthetic TPC-H tables as CSV, for
// inspecting the data substrate or feeding external tools.
//
// Usage:
//
//	tpchgen -table lineitem -sf 0.001 -limit 20
package main

import (
	"bufio"
	"flag"
	"log"
	"os"

	"stethoscope"
)

func main() {
	table := flag.String("table", "lineitem", "table to dump")
	sf := flag.Float64("sf", 0.001, "TPC-H scale factor")
	seed := flag.Uint64("seed", 42, "generator seed")
	limit := flag.Int("limit", 0, "max rows (0 = all)")
	flag.Parse()

	db, err := stethoscope.Open(stethoscope.WithScaleFactor(*sf), stethoscope.WithSeed(*seed))
	if err != nil {
		log.Fatalf("open: %v", err)
	}
	w := bufio.NewWriter(os.Stdout)
	defer w.Flush()
	if err := db.DumpCSV(w, *table, *limit); err != nil {
		log.Fatal(err)
	}
}
