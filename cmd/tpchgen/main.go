// Command tpchgen dumps the synthetic TPC-H tables as CSV, for
// inspecting the data substrate or feeding external tools, and
// persists whole datasets to disk for later OpenPath / mserver -data
// opens that skip regeneration.
//
// Usage:
//
//	tpchgen -table lineitem -sf 0.001 -limit 20
//	tpchgen -persist /var/lib/stetho/sf01 -sf 0.1
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"log"
	"os"

	"stethoscope"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, log.Printf); err != nil {
		log.Fatal(err)
	}
}

// run is the whole CLI behind a testable seam: flag parsing, flag
// validation, generation, and then either a dataset persist or a CSV
// dump.
func run(args []string, stdout io.Writer, logf func(string, ...any)) error {
	fs := flag.NewFlagSet("tpchgen", flag.ContinueOnError)
	table := fs.String("table", "lineitem", "table to dump")
	sf := fs.Float64("sf", 0.001, "TPC-H scale factor")
	seed := fs.Uint64("seed", 42, "generator seed")
	limit := fs.Int("limit", 0, "max rows (0 = all)")
	persist := fs.String("persist", "", "persist the whole dataset into this directory instead of dumping CSV")
	if err := fs.Parse(args); err != nil {
		return err
	}
	// Validate through the same rules Open applies, so a bad flag fails
	// loudly here instead of being accepted silently (NaN, for one,
	// slips past a plain `sf <= 0` check) or surfacing as a confusing
	// generator error.
	if err := stethoscope.ValidateScaleFactor(*sf); err != nil {
		return fmt.Errorf("-sf %g: %w", *sf, err)
	}
	if *limit < 0 {
		return fmt.Errorf("-limit must be >= 0, got %d", *limit)
	}
	db, err := stethoscope.Open(stethoscope.WithScaleFactor(*sf), stethoscope.WithSeed(*seed))
	if err != nil {
		return fmt.Errorf("open: %w", err)
	}
	defer db.Close()
	if *persist != "" {
		if err := db.Persist(*persist); err != nil {
			return err
		}
		var rows int
		for _, t := range db.Tables() {
			rows += t.Rows
		}
		logf("persisted %d tables (%d rows) at SF=%g seed=%d into %s", len(db.Tables()), rows, *sf, *seed, *persist)
		return nil
	}
	w := bufio.NewWriter(stdout)
	defer w.Flush()
	return db.DumpCSV(w, *table, *limit)
}
