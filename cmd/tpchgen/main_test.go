package main

import (
	"bytes"
	"math"
	"path/filepath"
	"strconv"
	"strings"
	"testing"

	"stethoscope"
)

func discardLogf(string, ...any) {}

// TestRejectsBadScaleFactor pins the regression where out-of-range -sf
// values were accepted silently: zero and negative were passed through
// to generation, and NaN slipped past the facade's old `sf <= 0` check
// entirely (NaN comparisons are always false). All of them must fail
// flag validation now, before any data is generated.
func TestRejectsBadScaleFactor(t *testing.T) {
	for _, sf := range []float64{0, -0.01, math.NaN(), math.Inf(1), math.Inf(-1)} {
		args := []string{"-sf", strconv.FormatFloat(sf, 'g', -1, 64), "-limit", "1"}
		err := run(args, &bytes.Buffer{}, discardLogf)
		if err == nil {
			t.Fatalf("run(-sf %g) succeeded, want validation error", sf)
		}
		if !strings.Contains(err.Error(), "scale factor") {
			t.Fatalf("run(-sf %g) error %q does not mention the scale factor", sf, err)
		}
	}
}

func TestRejectsNegativeLimit(t *testing.T) {
	if err := run([]string{"-limit", "-1"}, &bytes.Buffer{}, discardLogf); err == nil {
		t.Fatal("run(-limit -1) succeeded, want validation error")
	}
}

// TestDumpCSVSmoke keeps the original dump path working: a tiny table
// dump yields a header plus the requested rows.
func TestDumpCSVSmoke(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-table", "region", "-limit", "3"}, &out, discardLogf); err != nil {
		t.Fatalf("run: %v", err)
	}
	lines := strings.Split(strings.TrimSpace(out.String()), "\n")
	if len(lines) != 4 {
		t.Fatalf("got %d lines, want header + 3 rows:\n%s", len(lines), out.String())
	}
	if !strings.HasPrefix(lines[0], "r_regionkey") {
		t.Fatalf("unexpected header %q", lines[0])
	}
}

// TestPersistFlagWritesOpenableDataset drives the -persist flag end to
// end: the directory it writes must open without regeneration and
// serve the same rows the generator would.
func TestPersistFlagWritesOpenableDataset(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "ds")
	if err := run([]string{"-sf", "0.001", "-persist", dir}, &bytes.Buffer{}, discardLogf); err != nil {
		t.Fatalf("run -persist: %v", err)
	}
	var direct, persisted bytes.Buffer
	if err := run([]string{"-sf", "0.001", "-table", "nation", "-limit", "0"}, &direct, discardLogf); err != nil {
		t.Fatalf("run dump: %v", err)
	}
	db, err := stethoscope.OpenPath(dir)
	if err != nil {
		t.Fatalf("OpenPath: %v", err)
	}
	defer db.Close()
	if err := db.DumpCSV(&persisted, "nation", 0); err != nil {
		t.Fatalf("DumpCSV from persisted: %v", err)
	}
	if direct.String() != persisted.String() {
		t.Fatal("persisted dataset dump differs from direct generation")
	}
}
