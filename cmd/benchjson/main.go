// Command benchjson converts `go test -bench` output on stdin into a
// JSON document on stdout, for CI's perf-trajectory artifacts
// (BENCH_<sha>.json). Each benchmark line becomes one record; repeated
// runs of the same benchmark (-count=N) become repeated records so the
// consumer can compute its own spread.
//
// With -baseline FILE, a previously recorded document is compared
// against the current run and a per-benchmark delta summary (best
// ns/op, baseline vs current, signed percentage) is printed to stderr —
// CI points this at the previous commit's artifact so the log shows the
// perf trajectory without downloading anything.
//
// With -gate PCT (requires -baseline), the delta summary becomes an
// enforced check: the process exits non-zero when any benchmark present
// in both documents regressed by more than PCT percent (best ns/op vs
// best ns/op, so -count repetitions absorb scheduler noise).
// -gate-override 'name=pct,name=pct' sets per-benchmark thresholds —
// tighter for stable CPU-bound benchmarks, looser for noisy concurrent
// ones; an override name matches a benchmark exactly or as a
// sub-benchmark/GOMAXPROCS prefix (longest match wins). -gate-min-ns N
// sets the noise floor: benchmarks measuring below N ns/op in both
// documents are dominated by timer/scheduler jitter at 1x benchtimes
// and are not gated (unless the current run blows past the floor). A
// missing or unreadable baseline never fails the gate: the first
// recorded run has nothing to compare against.
//
// Usage:
//
//	go test -bench . -benchtime 1x -count 3 -run '^$' . | go run ./cmd/benchjson > BENCH_abc123.json
//	go test -bench . ... | go run ./cmd/benchjson -baseline BENCH_prev.json > BENCH_cur.json
//	go test -bench . ... | go run ./cmd/benchjson -baseline BENCH_prev.json -gate 25 -gate-override 'BenchmarkHistoryTopN=15' > /dev/null
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
)

// Record is one benchmark measurement. Custom carries b.ReportMetric
// units the standard fields don't cover (e.g. "peak-bytes",
// "events/sec"), keyed by unit.
type Record struct {
	Name        string             `json:"name"`
	Runs        int                `json:"runs"`
	NsPerOp     float64            `json:"ns_per_op"`
	BytesPerOp  float64            `json:"bytes_per_op,omitempty"`
	AllocsPerOp float64            `json:"allocs_per_op,omitempty"`
	MBPerSec    float64            `json:"mb_per_sec,omitempty"`
	Custom      map[string]float64 `json:"custom,omitempty"`
}

// Document is the artifact schema.
type Document struct {
	Goos       string   `json:"goos,omitempty"`
	Goarch     string   `json:"goarch,omitempty"`
	Pkg        string   `json:"pkg,omitempty"`
	CPU        string   `json:"cpu,omitempty"`
	Benchmarks []Record `json:"benchmarks"`
}

func main() {
	baseline := flag.String("baseline", "", "previously recorded BENCH_<sha>.json to diff the current run against (summary on stderr)")
	gate := flag.Float64("gate", 0, "fail (exit 1) when any benchmark regresses more than this percent vs the baseline; 0 disables")
	gateOverride := flag.String("gate-override", "", "comma-separated name=pct per-benchmark gate thresholds, e.g. 'BenchmarkHistoryTopN=15,BenchmarkConcurrentExec=50'")
	gateMinNs := flag.Float64("gate-min-ns", 0, "noise floor: benchmarks whose baseline AND current best ns/op are both below this are too small to gate reliably at low benchtimes and are skipped")
	flag.Parse()
	doc, err := Parse(os.Stdin)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	if *baseline == "" {
		return
	}
	f, err := os.Open(*baseline)
	if err != nil {
		// A missing baseline is normal on the first recorded run; the
		// gate has nothing to enforce against either.
		fmt.Fprintf(os.Stderr, "benchjson: no baseline (%v); skipping delta summary\n", err)
		return
	}
	defer f.Close()
	var base Document
	if err := json.NewDecoder(f).Decode(&base); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: unreadable baseline %s: %v\n", *baseline, err)
		return
	}
	for _, line := range DeltaSummary(base, doc) {
		fmt.Fprintln(os.Stderr, line)
	}
	if *gate > 0 {
		overrides, err := ParseOverrides(*gateOverride)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		violations := GateViolations(base, doc, *gate, *gateMinNs, overrides)
		if len(violations) > 0 {
			fmt.Fprintf(os.Stderr, "benchjson: GATE FAILED — %d benchmark(s) regressed past the threshold:\n", len(violations))
			for _, v := range violations {
				fmt.Fprintln(os.Stderr, "  "+v)
			}
			fmt.Fprintln(os.Stderr, "benchjson: commit with [bench-skip] in the message to bypass a known, accepted regression")
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "benchjson: gate passed (threshold %.0f%%, %d overrides)\n", *gate, len(overrides))
	}
}

// ParseOverrides parses the -gate-override syntax: comma-separated
// name=pct pairs.
func ParseOverrides(s string) (map[string]float64, error) {
	out := map[string]float64{}
	if s == "" {
		return out, nil
	}
	for _, pair := range strings.Split(s, ",") {
		pair = strings.TrimSpace(pair)
		if pair == "" {
			continue
		}
		name, pctStr, ok := strings.Cut(pair, "=")
		if !ok {
			return nil, fmt.Errorf("bad gate override %q (want name=pct)", pair)
		}
		pct, err := strconv.ParseFloat(strings.TrimSpace(pctStr), 64)
		if err != nil || pct <= 0 {
			return nil, fmt.Errorf("bad gate override threshold %q", pair)
		}
		out[strings.TrimSpace(name)] = pct
	}
	return out, nil
}

// thresholdFor picks the gate threshold for one benchmark: the longest
// override whose name matches exactly or as a sub-benchmark ("/") or
// GOMAXPROCS ("-N") prefix, else the default.
func thresholdFor(name string, defaultPct float64, overrides map[string]float64) float64 {
	best, bestLen := defaultPct, -1
	for key, pct := range overrides {
		if len(key) <= bestLen {
			continue
		}
		if name == key || strings.HasPrefix(name, key+"/") || strings.HasPrefix(name, key+"-") {
			best, bestLen = pct, len(key)
		}
	}
	return best
}

// GateViolations returns one line per benchmark present in both
// documents whose best ns/op regressed past its threshold. Added and
// removed benchmarks never violate the gate — coverage changes are the
// bench-smoke job's concern. minNs is the noise floor: a benchmark
// whose baseline and current bests are BOTH below it measures mostly
// timer and scheduler jitter at the recording benchtime and is skipped;
// one that balloons from below the floor to above it still gates, so
// the floor cannot mask a real cliff. Custom byte metrics (peak-bytes)
// gate alongside ns/op — see byteMetricViolations.
func GateViolations(base, cur Document, defaultPct, minNs float64, overrides map[string]float64) []string {
	b, c := bestNs(base), bestNs(cur)
	names := make([]string, 0, len(c))
	for name := range c {
		if _, ok := b[name]; ok {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	var out []string
	for _, name := range names {
		baseNs, curNs := b[name], c[name]
		if baseNs <= 0 {
			continue
		}
		if baseNs < minNs && curNs < minNs {
			continue
		}
		pct := (curNs - baseNs) / baseNs * 100
		limit := thresholdFor(name, defaultPct, overrides)
		if pct > limit {
			out = append(out, fmt.Sprintf("%-60s %14.0f -> %14.0f ns/op  %+6.1f%% (limit %.0f%%)",
				name, baseNs, curNs, pct, limit))
		}
	}
	out = append(out, byteMetricViolations(base, cur, defaultPct, overrides)...)
	return out
}

// byteMetricViolations gates custom byte metrics (units ending in
// "-bytes", such as BenchmarkPeakRSS's peak-bytes): like ns/op they are
// higher-is-worse, so a best-vs-best growth past the benchmark's
// threshold is a memory regression. Rate-style custom metrics
// (events/sec) are higher-is-better and are not gated here. The ns/op
// noise floor does not apply — a byte measurement has no timer jitter.
func byteMetricViolations(base, cur Document, defaultPct float64, overrides map[string]float64) []string {
	units := map[string]bool{}
	for _, r := range cur.Benchmarks {
		for unit := range r.Custom {
			if strings.HasSuffix(unit, "-bytes") {
				units[unit] = true
			}
		}
	}
	sortedUnits := make([]string, 0, len(units))
	for unit := range units {
		sortedUnits = append(sortedUnits, unit)
	}
	sort.Strings(sortedUnits)
	var out []string
	for _, unit := range sortedUnits {
		b, c := bestCustom(base, unit), bestCustom(cur, unit)
		names := make([]string, 0, len(c))
		for name := range c {
			if _, ok := b[name]; ok {
				names = append(names, name)
			}
		}
		sort.Strings(names)
		for _, name := range names {
			baseV, curV := b[name], c[name]
			if baseV <= 0 {
				continue
			}
			pct := (curV - baseV) / baseV * 100
			limit := thresholdFor(name, defaultPct, overrides)
			if pct > limit {
				out = append(out, fmt.Sprintf("%-60s %14.0f -> %14.0f %s  %+6.1f%% (limit %.0f%%)",
					name, baseV, curV, unit, pct, limit))
			}
		}
	}
	return out
}

// bestCustom reduces repeated records to the best (lowest) value of one
// custom higher-is-worse metric per benchmark name.
func bestCustom(doc Document, unit string) map[string]float64 {
	best := map[string]float64{}
	for _, r := range doc.Benchmarks {
		v, ok := r.Custom[unit]
		if !ok {
			continue
		}
		if cur, seen := best[r.Name]; !seen || v < cur {
			best[r.Name] = v
		}
	}
	return best
}

// bestNs reduces repeated records (-count=N) to the best ns/op per
// benchmark name — the spread-insensitive statistic for delta lines.
func bestNs(doc Document) map[string]float64 {
	best := map[string]float64{}
	for _, r := range doc.Benchmarks {
		if cur, ok := best[r.Name]; !ok || r.NsPerOp < cur {
			best[r.Name] = r.NsPerOp
		}
	}
	return best
}

// DeltaSummary renders a baseline-vs-current comparison, one line per
// benchmark present in both documents (sorted by name), plus lines for
// benchmarks that appeared or disappeared.
func DeltaSummary(base, cur Document) []string {
	b, c := bestNs(base), bestNs(cur)
	names := make([]string, 0, len(c))
	for name := range c {
		names = append(names, name)
	}
	sort.Strings(names)
	out := []string{fmt.Sprintf("benchjson: delta vs baseline (%d benchmarks, best ns/op)", len(names))}
	for _, name := range names {
		curNs := c[name]
		baseNs, ok := b[name]
		if !ok {
			out = append(out, fmt.Sprintf("  %-60s %14.0f ns/op  (new)", name, curNs))
			continue
		}
		pct := 0.0
		if baseNs > 0 {
			pct = (curNs - baseNs) / baseNs * 100
		}
		out = append(out, fmt.Sprintf("  %-60s %14.0f -> %14.0f ns/op  %+6.1f%%", name, baseNs, curNs, pct))
	}
	removed := make([]string, 0)
	for name := range b {
		if _, ok := c[name]; !ok {
			removed = append(removed, name)
		}
	}
	sort.Strings(removed)
	for _, name := range removed {
		out = append(out, fmt.Sprintf("  %-60s (removed)", name))
	}
	return out
}

// Parse reads `go test -bench` output and collects benchmark records.
// Non-benchmark lines (PASS, ok, test logs) are skipped; the goos /
// goarch / pkg / cpu headers are captured when present. Multiple
// packages concatenated in one stream keep the last header seen.
func Parse(r interface{ Read([]byte) (int, error) }) (Document, error) {
	doc := Document{Benchmarks: []Record{}}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos:"):
			doc.Goos = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
			continue
		case strings.HasPrefix(line, "goarch:"):
			doc.Goarch = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
			continue
		case strings.HasPrefix(line, "pkg:"):
			doc.Pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
			continue
		case strings.HasPrefix(line, "cpu:"):
			doc.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
			continue
		}
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		rec, ok := parseBenchLine(line)
		if !ok {
			continue
		}
		doc.Benchmarks = append(doc.Benchmarks, rec)
	}
	return doc, sc.Err()
}

// parseBenchLine parses one result line, e.g.
//
//	BenchmarkPlanCacheHit/cached-8   100   980067 ns/op   12 B/op   3 allocs/op
func parseBenchLine(line string) (Record, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 {
		return Record{}, false
	}
	rec := Record{Name: fields[0]}
	runs, err := strconv.Atoi(fields[1])
	if err != nil {
		return Record{}, false
	}
	rec.Runs = runs
	// The remainder is value/unit pairs.
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			continue
		}
		switch unit := fields[i+1]; unit {
		case "ns/op":
			rec.NsPerOp = v
		case "B/op":
			rec.BytesPerOp = v
		case "allocs/op":
			rec.AllocsPerOp = v
		case "MB/s":
			rec.MBPerSec = v
		default:
			// A b.ReportMetric unit ("peak-bytes", "events/sec", ...).
			if rec.Custom == nil {
				rec.Custom = map[string]float64{}
			}
			rec.Custom[unit] = v
		}
	}
	if rec.NsPerOp == 0 {
		return Record{}, false
	}
	return rec, true
}
