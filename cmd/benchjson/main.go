// Command benchjson converts `go test -bench` output on stdin into a
// JSON document on stdout, for CI's perf-trajectory artifacts
// (BENCH_<sha>.json). Each benchmark line becomes one record; repeated
// runs of the same benchmark (-count=N) become repeated records so the
// consumer can compute its own spread.
//
// Usage:
//
//	go test -bench . -benchtime 1x -count 3 -run '^$' . | go run ./cmd/benchjson > BENCH_abc123.json
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// Record is one benchmark measurement.
type Record struct {
	Name        string  `json:"name"`
	Runs        int     `json:"runs"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op,omitempty"`
	AllocsPerOp float64 `json:"allocs_per_op,omitempty"`
	MBPerSec    float64 `json:"mb_per_sec,omitempty"`
}

// Document is the artifact schema.
type Document struct {
	Goos       string   `json:"goos,omitempty"`
	Goarch     string   `json:"goarch,omitempty"`
	Pkg        string   `json:"pkg,omitempty"`
	CPU        string   `json:"cpu,omitempty"`
	Benchmarks []Record `json:"benchmarks"`
}

func main() {
	doc, err := Parse(os.Stdin)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

// Parse reads `go test -bench` output and collects benchmark records.
// Non-benchmark lines (PASS, ok, test logs) are skipped; the goos /
// goarch / pkg / cpu headers are captured when present. Multiple
// packages concatenated in one stream keep the last header seen.
func Parse(r interface{ Read([]byte) (int, error) }) (Document, error) {
	doc := Document{Benchmarks: []Record{}}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos:"):
			doc.Goos = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
			continue
		case strings.HasPrefix(line, "goarch:"):
			doc.Goarch = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
			continue
		case strings.HasPrefix(line, "pkg:"):
			doc.Pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
			continue
		case strings.HasPrefix(line, "cpu:"):
			doc.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
			continue
		}
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		rec, ok := parseBenchLine(line)
		if !ok {
			continue
		}
		doc.Benchmarks = append(doc.Benchmarks, rec)
	}
	return doc, sc.Err()
}

// parseBenchLine parses one result line, e.g.
//
//	BenchmarkPlanCacheHit/cached-8   100   980067 ns/op   12 B/op   3 allocs/op
func parseBenchLine(line string) (Record, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 {
		return Record{}, false
	}
	rec := Record{Name: fields[0]}
	runs, err := strconv.Atoi(fields[1])
	if err != nil {
		return Record{}, false
	}
	rec.Runs = runs
	// The remainder is value/unit pairs.
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			continue
		}
		switch fields[i+1] {
		case "ns/op":
			rec.NsPerOp = v
		case "B/op":
			rec.BytesPerOp = v
		case "allocs/op":
			rec.AllocsPerOp = v
		case "MB/s":
			rec.MBPerSec = v
		}
	}
	if rec.NsPerOp == 0 {
		return Record{}, false
	}
	return rec, true
}
