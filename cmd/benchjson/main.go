// Command benchjson converts `go test -bench` output on stdin into a
// JSON document on stdout, for CI's perf-trajectory artifacts
// (BENCH_<sha>.json). Each benchmark line becomes one record; repeated
// runs of the same benchmark (-count=N) become repeated records so the
// consumer can compute its own spread.
//
// With -baseline FILE, a previously recorded document is compared
// against the current run and a per-benchmark delta summary (best
// ns/op, baseline vs current, signed percentage) is printed to stderr —
// CI points this at the previous commit's artifact so the log shows the
// perf trajectory without downloading anything.
//
// Usage:
//
//	go test -bench . -benchtime 1x -count 3 -run '^$' . | go run ./cmd/benchjson > BENCH_abc123.json
//	go test -bench . ... | go run ./cmd/benchjson -baseline BENCH_prev.json > BENCH_cur.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
)

// Record is one benchmark measurement.
type Record struct {
	Name        string  `json:"name"`
	Runs        int     `json:"runs"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op,omitempty"`
	AllocsPerOp float64 `json:"allocs_per_op,omitempty"`
	MBPerSec    float64 `json:"mb_per_sec,omitempty"`
}

// Document is the artifact schema.
type Document struct {
	Goos       string   `json:"goos,omitempty"`
	Goarch     string   `json:"goarch,omitempty"`
	Pkg        string   `json:"pkg,omitempty"`
	CPU        string   `json:"cpu,omitempty"`
	Benchmarks []Record `json:"benchmarks"`
}

func main() {
	baseline := flag.String("baseline", "", "previously recorded BENCH_<sha>.json to diff the current run against (summary on stderr)")
	flag.Parse()
	doc, err := Parse(os.Stdin)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	if *baseline != "" {
		f, err := os.Open(*baseline)
		if err != nil {
			// A missing baseline is normal on the first recorded run.
			fmt.Fprintf(os.Stderr, "benchjson: no baseline (%v); skipping delta summary\n", err)
			return
		}
		defer f.Close()
		var base Document
		if err := json.NewDecoder(f).Decode(&base); err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: unreadable baseline %s: %v\n", *baseline, err)
			return
		}
		for _, line := range DeltaSummary(base, doc) {
			fmt.Fprintln(os.Stderr, line)
		}
	}
}

// bestNs reduces repeated records (-count=N) to the best ns/op per
// benchmark name — the spread-insensitive statistic for delta lines.
func bestNs(doc Document) map[string]float64 {
	best := map[string]float64{}
	for _, r := range doc.Benchmarks {
		if cur, ok := best[r.Name]; !ok || r.NsPerOp < cur {
			best[r.Name] = r.NsPerOp
		}
	}
	return best
}

// DeltaSummary renders a baseline-vs-current comparison, one line per
// benchmark present in both documents (sorted by name), plus lines for
// benchmarks that appeared or disappeared.
func DeltaSummary(base, cur Document) []string {
	b, c := bestNs(base), bestNs(cur)
	names := make([]string, 0, len(c))
	for name := range c {
		names = append(names, name)
	}
	sort.Strings(names)
	out := []string{fmt.Sprintf("benchjson: delta vs baseline (%d benchmarks, best ns/op)", len(names))}
	for _, name := range names {
		curNs := c[name]
		baseNs, ok := b[name]
		if !ok {
			out = append(out, fmt.Sprintf("  %-60s %14.0f ns/op  (new)", name, curNs))
			continue
		}
		pct := 0.0
		if baseNs > 0 {
			pct = (curNs - baseNs) / baseNs * 100
		}
		out = append(out, fmt.Sprintf("  %-60s %14.0f -> %14.0f ns/op  %+6.1f%%", name, baseNs, curNs, pct))
	}
	removed := make([]string, 0)
	for name := range b {
		if _, ok := c[name]; !ok {
			removed = append(removed, name)
		}
	}
	sort.Strings(removed)
	for _, name := range removed {
		out = append(out, fmt.Sprintf("  %-60s (removed)", name))
	}
	return out
}

// Parse reads `go test -bench` output and collects benchmark records.
// Non-benchmark lines (PASS, ok, test logs) are skipped; the goos /
// goarch / pkg / cpu headers are captured when present. Multiple
// packages concatenated in one stream keep the last header seen.
func Parse(r interface{ Read([]byte) (int, error) }) (Document, error) {
	doc := Document{Benchmarks: []Record{}}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos:"):
			doc.Goos = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
			continue
		case strings.HasPrefix(line, "goarch:"):
			doc.Goarch = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
			continue
		case strings.HasPrefix(line, "pkg:"):
			doc.Pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
			continue
		case strings.HasPrefix(line, "cpu:"):
			doc.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
			continue
		}
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		rec, ok := parseBenchLine(line)
		if !ok {
			continue
		}
		doc.Benchmarks = append(doc.Benchmarks, rec)
	}
	return doc, sc.Err()
}

// parseBenchLine parses one result line, e.g.
//
//	BenchmarkPlanCacheHit/cached-8   100   980067 ns/op   12 B/op   3 allocs/op
func parseBenchLine(line string) (Record, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 {
		return Record{}, false
	}
	rec := Record{Name: fields[0]}
	runs, err := strconv.Atoi(fields[1])
	if err != nil {
		return Record{}, false
	}
	rec.Runs = runs
	// The remainder is value/unit pairs.
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			continue
		}
		switch fields[i+1] {
		case "ns/op":
			rec.NsPerOp = v
		case "B/op":
			rec.BytesPerOp = v
		case "allocs/op":
			rec.AllocsPerOp = v
		case "MB/s":
			rec.MBPerSec = v
		}
	}
	if rec.NsPerOp == 0 {
		return Record{}, false
	}
	return rec, true
}
