package main

import (
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: stethoscope
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkPlanCacheHit/cold-8         	     100	   4562891 ns/op
BenchmarkPlanCacheHit/cached-8       	     100	    787722 ns/op	  12 B/op	       3 allocs/op
BenchmarkPlanCacheHit/cached-8       	     100	    801122 ns/op
some test log line
PASS
ok  	stethoscope	0.627s
`

func TestParse(t *testing.T) {
	doc, err := Parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if doc.Goos != "linux" || doc.Goarch != "amd64" || doc.Pkg != "stethoscope" {
		t.Fatalf("headers = %+v", doc)
	}
	if len(doc.Benchmarks) != 3 {
		t.Fatalf("records = %d, want 3", len(doc.Benchmarks))
	}
	b := doc.Benchmarks[1]
	if b.Name != "BenchmarkPlanCacheHit/cached-8" || b.Runs != 100 ||
		b.NsPerOp != 787722 || b.BytesPerOp != 12 || b.AllocsPerOp != 3 {
		t.Fatalf("record = %+v", b)
	}
	// -count=3 repeats stay separate records.
	if doc.Benchmarks[2].NsPerOp != 801122 {
		t.Fatalf("repeat record = %+v", doc.Benchmarks[2])
	}
}

func TestParseRejectsMalformed(t *testing.T) {
	doc, err := Parse(strings.NewReader("BenchmarkBroken abc def\nBenchmarkShort 1\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(doc.Benchmarks) != 0 {
		t.Fatalf("malformed lines produced %d records", len(doc.Benchmarks))
	}
}

func TestDeltaSummary(t *testing.T) {
	base := Document{Benchmarks: []Record{
		{Name: "BenchmarkA", NsPerOp: 1000},
		{Name: "BenchmarkA", NsPerOp: 900}, // repeated run: best wins
		{Name: "BenchmarkGone", NsPerOp: 50},
	}}
	cur := Document{Benchmarks: []Record{
		{Name: "BenchmarkA", NsPerOp: 450},
		{Name: "BenchmarkNew", NsPerOp: 77},
	}}
	lines := DeltaSummary(base, cur)
	joined := strings.Join(lines, "\n")
	if !strings.Contains(joined, "BenchmarkA") || !strings.Contains(joined, "-50.0%") {
		t.Errorf("missing improvement line:\n%s", joined)
	}
	if !strings.Contains(joined, "BenchmarkNew") || !strings.Contains(joined, "(new)") {
		t.Errorf("missing new-benchmark line:\n%s", joined)
	}
	if !strings.Contains(joined, "BenchmarkGone") || !strings.Contains(joined, "(removed)") {
		t.Errorf("missing removed-benchmark line:\n%s", joined)
	}
}
