package main

import (
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: stethoscope
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkPlanCacheHit/cold-8         	     100	   4562891 ns/op
BenchmarkPlanCacheHit/cached-8       	     100	    787722 ns/op	  12 B/op	       3 allocs/op
BenchmarkPlanCacheHit/cached-8       	     100	    801122 ns/op
some test log line
PASS
ok  	stethoscope	0.627s
`

func TestParse(t *testing.T) {
	doc, err := Parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if doc.Goos != "linux" || doc.Goarch != "amd64" || doc.Pkg != "stethoscope" {
		t.Fatalf("headers = %+v", doc)
	}
	if len(doc.Benchmarks) != 3 {
		t.Fatalf("records = %d, want 3", len(doc.Benchmarks))
	}
	b := doc.Benchmarks[1]
	if b.Name != "BenchmarkPlanCacheHit/cached-8" || b.Runs != 100 ||
		b.NsPerOp != 787722 || b.BytesPerOp != 12 || b.AllocsPerOp != 3 {
		t.Fatalf("record = %+v", b)
	}
	// -count=3 repeats stay separate records.
	if doc.Benchmarks[2].NsPerOp != 801122 {
		t.Fatalf("repeat record = %+v", doc.Benchmarks[2])
	}
}

func TestParseRejectsMalformed(t *testing.T) {
	doc, err := Parse(strings.NewReader("BenchmarkBroken abc def\nBenchmarkShort 1\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(doc.Benchmarks) != 0 {
		t.Fatalf("malformed lines produced %d records", len(doc.Benchmarks))
	}
}

func TestDeltaSummary(t *testing.T) {
	base := Document{Benchmarks: []Record{
		{Name: "BenchmarkA", NsPerOp: 1000},
		{Name: "BenchmarkA", NsPerOp: 900}, // repeated run: best wins
		{Name: "BenchmarkGone", NsPerOp: 50},
	}}
	cur := Document{Benchmarks: []Record{
		{Name: "BenchmarkA", NsPerOp: 450},
		{Name: "BenchmarkNew", NsPerOp: 77},
	}}
	lines := DeltaSummary(base, cur)
	joined := strings.Join(lines, "\n")
	if !strings.Contains(joined, "BenchmarkA") || !strings.Contains(joined, "-50.0%") {
		t.Errorf("missing improvement line:\n%s", joined)
	}
	if !strings.Contains(joined, "BenchmarkNew") || !strings.Contains(joined, "(new)") {
		t.Errorf("missing new-benchmark line:\n%s", joined)
	}
	if !strings.Contains(joined, "BenchmarkGone") || !strings.Contains(joined, "(removed)") {
		t.Errorf("missing removed-benchmark line:\n%s", joined)
	}
}

func TestParseOverrides(t *testing.T) {
	m, err := ParseOverrides(" BenchmarkA=15, BenchmarkB/x = 50 ")
	if err != nil {
		t.Fatal(err)
	}
	if m["BenchmarkA"] != 15 || m["BenchmarkB/x"] != 50 {
		t.Errorf("overrides = %v", m)
	}
	if m, err := ParseOverrides(""); err != nil || len(m) != 0 {
		t.Errorf("empty override spec: %v %v", m, err)
	}
	for _, bad := range []string{"BenchmarkA", "BenchmarkA=", "BenchmarkA=-3", "BenchmarkA=x"} {
		if _, err := ParseOverrides(bad); err == nil {
			t.Errorf("ParseOverrides(%q) succeeded", bad)
		}
	}
}

func TestThresholdForLongestPrefix(t *testing.T) {
	overrides := map[string]float64{
		"BenchmarkParallelJoin":      40,
		"BenchmarkParallelJoin/auto": 10,
	}
	cases := []struct {
		name string
		want float64
	}{
		{"BenchmarkParallelJoin/auto-8", 10},
		{"BenchmarkParallelJoin/sequential-8", 40},
		{"BenchmarkParallelJoin", 40},    // exact match
		{"BenchmarkParallelJoinX-8", 25}, // no separator: not a match
		{"BenchmarkParallelSort/auto-8", 25},
	}
	for _, c := range cases {
		if got := thresholdFor(c.name, 25, overrides); got != c.want {
			t.Errorf("thresholdFor(%q) = %g, want %g", c.name, got, c.want)
		}
	}
}

func TestGateViolations(t *testing.T) {
	base := Document{Benchmarks: []Record{
		{Name: "BenchmarkStable-8", NsPerOp: 100},
		{Name: "BenchmarkRegressed-8", NsPerOp: 100},
		{Name: "BenchmarkRemoved-8", NsPerOp: 100},
		{Name: "BenchmarkNoisy/x-8", NsPerOp: 100},
	}}
	cur := Document{Benchmarks: []Record{
		{Name: "BenchmarkStable-8", NsPerOp: 110},    // +10%: under the default gate
		{Name: "BenchmarkRegressed-8", NsPerOp: 140}, // +40%: over
		{Name: "BenchmarkNew-8", NsPerOp: 500},       // new: never gated
		{Name: "BenchmarkNoisy/x-8", NsPerOp: 140},   // +40%: allowed by override
	}}
	got := GateViolations(base, cur, 25, 0, map[string]float64{"BenchmarkNoisy": 50})
	if len(got) != 1 || !strings.Contains(got[0], "BenchmarkRegressed-8") {
		t.Fatalf("violations = %v", got)
	}
	// Best-of-count gating: one fast repetition clears the gate even
	// when the other repetitions were slow (scheduler noise absorption).
	cur2 := Document{Benchmarks: []Record{
		{Name: "BenchmarkRegressed-8", NsPerOp: 300},
		{Name: "BenchmarkRegressed-8", NsPerOp: 105},
	}}
	if got := GateViolations(base, cur2, 25, 0, nil); len(got) != 0 {
		t.Fatalf("best-of gating failed: %v", got)
	}
	// A tighter override fires below the default threshold.
	got = GateViolations(base,
		Document{Benchmarks: []Record{{Name: "BenchmarkStable-8", NsPerOp: 120}}},
		25, 0, map[string]float64{"BenchmarkStable": 10})
	if len(got) != 1 {
		t.Fatalf("tight override did not fire: %v", got)
	}
	// Exactly-at-threshold passes: the gate is strictly greater-than.
	got = GateViolations(base,
		Document{Benchmarks: []Record{{Name: "BenchmarkStable-8", NsPerOp: 125}}}, 25, 0, nil)
	if len(got) != 0 {
		t.Fatalf("at-threshold regression flagged: %v", got)
	}
}

func TestParseCustomMetrics(t *testing.T) {
	doc, err := Parse(strings.NewReader(
		"BenchmarkPeakRSS/morsel-8    2    335374649 ns/op    21980632 peak-bytes\n" +
			"BenchmarkHistoryAppend-8    1000    1200 ns/op    833333 events/sec\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(doc.Benchmarks) != 2 {
		t.Fatalf("records = %d, want 2", len(doc.Benchmarks))
	}
	if got := doc.Benchmarks[0].Custom["peak-bytes"]; got != 21980632 {
		t.Errorf("peak-bytes = %v", doc.Benchmarks[0].Custom)
	}
	if got := doc.Benchmarks[1].Custom["events/sec"]; got != 833333 {
		t.Errorf("events/sec = %v", doc.Benchmarks[1].Custom)
	}
}

func TestGateByteMetrics(t *testing.T) {
	base := Document{Benchmarks: []Record{
		{Name: "BenchmarkPeakRSS/morsel-8", NsPerOp: 100, Custom: map[string]float64{"peak-bytes": 20e6}},
		{Name: "BenchmarkPeakRSS/static-8", NsPerOp: 100, Custom: map[string]float64{"peak-bytes": 50e6}},
		{Name: "BenchmarkHistoryAppend-8", NsPerOp: 100, Custom: map[string]float64{"events/sec": 1e6}},
	}}
	cur := Document{Benchmarks: []Record{
		// ns/op steady, peak-bytes +100%: a memory regression the time
		// gate alone would miss.
		{Name: "BenchmarkPeakRSS/morsel-8", NsPerOp: 100, Custom: map[string]float64{"peak-bytes": 40e6}},
		{Name: "BenchmarkPeakRSS/static-8", NsPerOp: 100, Custom: map[string]float64{"peak-bytes": 55e6}},
		// Rate metrics are higher-is-better: a drop must not gate.
		{Name: "BenchmarkHistoryAppend-8", NsPerOp: 100, Custom: map[string]float64{"events/sec": 1e3}},
	}}
	got := GateViolations(base, cur, 25, 0, nil)
	if len(got) != 1 || !strings.Contains(got[0], "BenchmarkPeakRSS/morsel-8") ||
		!strings.Contains(got[0], "peak-bytes") {
		t.Fatalf("violations = %v, want the morsel peak-bytes regression only", got)
	}
	// Overrides apply to byte metrics through the same prefix match, and
	// best-of-count reduction picks the lowest byte measurement.
	cur2 := Document{Benchmarks: []Record{
		{Name: "BenchmarkPeakRSS/morsel-8", NsPerOp: 100, Custom: map[string]float64{"peak-bytes": 60e6}},
		{Name: "BenchmarkPeakRSS/morsel-8", NsPerOp: 100, Custom: map[string]float64{"peak-bytes": 21e6}},
	}}
	if got := GateViolations(base, cur2, 25, 0, nil); len(got) != 0 {
		t.Fatalf("best-of byte gating failed: %v", got)
	}
	if got := GateViolations(base, cur, 25, 0, map[string]float64{"BenchmarkPeakRSS": 150}); len(got) != 0 {
		t.Fatalf("byte-metric override ignored: %v", got)
	}
}

func TestGateNoiseFloor(t *testing.T) {
	base := Document{Benchmarks: []Record{
		{Name: "BenchmarkMicro-8", NsPerOp: 2000},
		{Name: "BenchmarkCliff-8", NsPerOp: 2000},
		{Name: "BenchmarkBig-8", NsPerOp: 1_000_000},
	}}
	cur := Document{Benchmarks: []Record{
		{Name: "BenchmarkMicro-8", NsPerOp: 4000},    // +100% but under the floor: jitter
		{Name: "BenchmarkCliff-8", NsPerOp: 500_000}, // blows past the floor: real cliff
		{Name: "BenchmarkBig-8", NsPerOp: 1_500_000}, // +50% above the floor: gated
	}}
	got := GateViolations(base, cur, 25, 100_000, nil)
	if len(got) != 2 {
		t.Fatalf("violations = %v, want cliff + big", got)
	}
	joined := strings.Join(got, "\n")
	if !strings.Contains(joined, "BenchmarkCliff-8") || !strings.Contains(joined, "BenchmarkBig-8") {
		t.Fatalf("violations = %v", got)
	}
	// Floor disabled: the micro jitter is flagged too.
	if got := GateViolations(base, cur, 25, 0, nil); len(got) != 3 {
		t.Fatalf("floorless violations = %v", got)
	}
}
