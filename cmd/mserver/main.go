// Command mserver runs the reproduction's MonetDB-like database server:
// it loads a synthetic TPC-H catalog and serves the Stethoscope protocol
// over TCP (queries, EXPLAIN, dot export, profiler UDP streaming).
//
// Usage:
//
//	mserver -addr 127.0.0.1:50000 -sf 0.01 -name demo
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"

	"stethoscope"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:50000", "TCP listen address")
	sf := flag.Float64("sf", 0.01, "TPC-H scale factor")
	seed := flag.Uint64("seed", 42, "data generator seed")
	name := flag.String("name", "mserver", "server name announced to clients")
	flag.Parse()

	log.Printf("generating TPC-H data at SF=%g ...", *sf)
	db, err := stethoscope.Open(stethoscope.WithScaleFactor(*sf), stethoscope.WithSeed(*seed))
	if err != nil {
		log.Fatalf("open: %v", err)
	}
	for _, t := range db.Tables() {
		log.Printf("  %-14s %8d rows", t.Name, t.Rows)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	srv, err := db.Serve(ctx, *name, *addr)
	if err != nil {
		log.Fatalf("listen: %v", err)
	}
	fmt.Printf("mserver %q listening on %s\n", *name, srv.Addr())
	fmt.Println("protocol: SET partitions|workers N / TRACE udpaddr / FILTER ... / EXPLAIN sql / DOT sql / QUERY sql / TABLES / QUIT")

	<-ctx.Done()
	log.Println("shutting down")
	srv.Close()
}
