// Command mserver runs the reproduction's MonetDB-like database server:
// it loads a synthetic TPC-H catalog and serves the Stethoscope protocol
// over TCP (queries, EXPLAIN, dot export, profiler UDP streaming).
//
// Usage:
//
//	mserver -addr 127.0.0.1:50000 -sf 0.01 -name demo
//	mserver -addr 127.0.0.1:50000 -data /var/lib/stetho/sf01
//
// With -data the server opens a dataset persisted by tpchgen -persist
// (or DB.Persist) instead of regenerating: startup reads only the
// manifest, and columns stream off disk as queries first scan them.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"

	"stethoscope"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:50000", "TCP listen address")
	sf := flag.Float64("sf", 0.01, "TPC-H scale factor")
	seed := flag.Uint64("seed", 42, "data generator seed")
	data := flag.String("data", "", "open this persisted dataset directory instead of generating (-sf/-seed must be left default)")
	name := flag.String("name", "mserver", "server name announced to clients")
	metricsAddr := flag.String("metrics-addr", "", "optional HTTP observability endpoint (Prometheus /metrics, JSON /progress, /debug/pprof)")
	flag.Parse()

	var (
		db  *stethoscope.DB
		err error
	)
	var extra []stethoscope.Option
	if *metricsAddr != "" {
		extra = append(extra, stethoscope.WithMetricsAddr(*metricsAddr))
	}
	if *data != "" {
		log.Printf("opening persisted dataset %s ...", *data)
		opts := extra
		flag.Visit(func(f *flag.Flag) {
			if f.Name == "sf" || f.Name == "seed" {
				// Let Open report the conflict instead of silently
				// ignoring the flag.
				if f.Name == "sf" {
					opts = append(opts, stethoscope.WithScaleFactor(*sf))
				} else {
					opts = append(opts, stethoscope.WithSeed(*seed))
				}
			}
		})
		db, err = stethoscope.OpenPath(*data, opts...)
	} else {
		log.Printf("generating TPC-H data at SF=%g ...", *sf)
		opts := append([]stethoscope.Option{stethoscope.WithScaleFactor(*sf), stethoscope.WithSeed(*seed)}, extra...)
		db, err = stethoscope.Open(opts...)
	}
	if err != nil {
		log.Fatalf("open: %v", err)
	}
	if *metricsAddr != "" {
		log.Printf("observability endpoint on http://%s/metrics (and /progress, /debug/pprof/)", db.MetricsAddr())
	}
	for _, t := range db.Tables() {
		log.Printf("  %-14s %8d rows", t.Name, t.Rows)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	srv, err := db.Serve(ctx, *name, *addr)
	if err != nil {
		log.Fatalf("listen: %v", err)
	}
	fmt.Printf("mserver %q listening on %s\n", *name, srv.Addr())
	fmt.Println("protocol: SET partitions|workers|morsel <n|auto> / TRACE udpaddr / FILTER ... / EXPLAIN sql / DOT sql / QUERY sql / TABLES / STATS / METRICS / PROGRESS / QUIT")

	<-ctx.Done()
	log.Println("shutting down")
	srv.Close()
}
