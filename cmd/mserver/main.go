// Command mserver runs the reproduction's MonetDB-like database server:
// it loads a synthetic TPC-H catalog and serves the Stethoscope protocol
// over TCP (queries, EXPLAIN, dot export, profiler UDP streaming).
//
// Usage:
//
//	mserver -addr 127.0.0.1:50000 -sf 0.01 -name demo
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"

	"stethoscope/internal/server"
	"stethoscope/internal/storage"
	"stethoscope/internal/tpch"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:50000", "TCP listen address")
	sf := flag.Float64("sf", 0.01, "TPC-H scale factor")
	seed := flag.Uint64("seed", 42, "data generator seed")
	name := flag.String("name", "mserver", "server name announced to clients")
	flag.Parse()

	cat := storage.NewCatalog()
	log.Printf("generating TPC-H data at SF=%g ...", *sf)
	if err := tpch.Load(cat, tpch.Config{SF: *sf, Seed: *seed}); err != nil {
		log.Fatalf("tpch: %v", err)
	}
	for _, t := range cat.TableNames() {
		tab, _ := cat.Table("sys", t[len("sys."):])
		log.Printf("  %-14s %8d rows", t, tab.Rows())
	}

	srv := server.New(*name, cat)
	if err := srv.Listen(*addr); err != nil {
		log.Fatalf("listen: %v", err)
	}
	fmt.Printf("mserver %q listening on %s\n", *name, srv.Addr())
	fmt.Println("protocol: SET partitions|workers N / TRACE udpaddr / FILTER ... / EXPLAIN sql / DOT sql / QUERY sql / TABLES / QUIT")

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	log.Println("shutting down")
	srv.Close()
}
