// Command tracehist lists, inspects, diffs, and renders the runs of a
// durable trace store — the operator's answer to "what ran slowly
// yesterday?". It works on any store written by a DB opened with
// WithHistory, by a server, or by tracegen -store; no live server is
// needed.
//
// Usage:
//
//	tracehist -dir .history list [-n 20]
//	tracehist -dir .history top [-n 10]
//	tracehist -dir .history show <id>
//	tracehist -dir .history diff <a> <b>
//	tracehist -dir .history report <id>
//	tracehist -dir .history svg <id> [-o run.svg]
//	tracehist -dir .history export <id> [-o run]
//	tracehist -dir .history rollup [module|operator]
//	tracehist -dir .history stats
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"
	"time"

	"stethoscope"
)

// subFlags parses a subcommand's own flags, so "tracehist -dir d svg 2
// -o out.svg" works with the flags after the positional arguments.
func subFlags(name string, args []string) (*flag.FlagSet, *int, *string, []string) {
	fs := flag.NewFlagSet(name, flag.ExitOnError)
	n := fs.Int("n", 0, "row limit (0 = default)")
	out := fs.String("o", "", "output path (svg) or prefix (export)")
	// Split positionals from flags regardless of order.
	var pos, flagArgs []string
	for i := 0; i < len(args); i++ {
		if len(args[i]) > 1 && args[i][0] == '-' {
			flagArgs = append(flagArgs, args[i:]...)
			break
		}
		pos = append(pos, args[i])
	}
	fs.Parse(flagArgs)
	return fs, n, out, pos
}

func main() {
	log.SetFlags(0)
	dir := flag.String("dir", ".history", "trace store directory")
	flag.Usage = usage
	flag.Parse()
	args := flag.Args()
	if len(args) == 0 {
		usage()
		os.Exit(2)
	}

	// Read-only: inspecting a store a live server is appending to is
	// safe — no writer lock is taken and no recovery truncation runs.
	h, err := stethoscope.OpenHistoryReadOnly(*dir)
	if err != nil {
		log.Fatalf("open history: %v", err)
	}
	defer h.Close()

	cmd, rest := args[0], args[1:]
	_, n, out, pos := subFlags(cmd, rest)
	switch cmd {
	case "list":
		printRuns(h.Queries(*n))
	case "top":
		limit := *n
		if limit == 0 {
			limit = 10
		}
		printRuns(h.TopN(limit))
	case "show":
		show(h, argID(pos, 0))
	case "diff":
		diff(h, argID(pos, 0), argID(pos, 1))
	case "report":
		report(h, argID(pos, 0))
	case "svg":
		writeSVG(h, argID(pos, 0), *out)
	case "export":
		export(h, argID(pos, 0), *out)
	case "rollup":
		kind := "module"
		if len(pos) > 0 {
			kind = pos[0]
		}
		rollup(h, kind)
	case "stats":
		st := h.Stats()
		fmt.Printf("segments=%d bytes=%d runs=%d recovered_events=%d truncated_bytes=%d dropped_segments=%d dropped_runs=%d\n",
			st.Segments, st.Bytes, st.Runs, st.RecoveredEvents, st.TruncatedBytes, st.DroppedSegments, st.DroppedRuns)
	default:
		usage()
		os.Exit(2)
	}
}

func usage() {
	fmt.Fprintf(os.Stderr, `tracehist inspects a durable query-history store.

usage: tracehist -dir <store> <command>

commands:
  list [-n N]        recorded runs, most recent first
  top [-n N]         slowest completed runs, slowest first (default 10)
  show <id>          one run: metadata, module rollup, costliest instructions
  diff <a> <b>       compare two runs of the same SQL (regression check)
  report <id>        full analysis report (colored plan, utilization, ...)
  svg <id> [-o f]    render the colored plan graph as SVG
  export <id> [-o p] write <p>.dot and <p>.trace for OpenOffline tooling
  rollup [module|operator]  busy-time rollup across all stored runs
  stats              store footprint and maintenance counters
`)
}

func argID(args []string, i int) uint64 {
	if len(args) <= i {
		usage()
		os.Exit(2)
	}
	id, err := strconv.ParseUint(args[i], 10, 64)
	if err != nil {
		log.Fatalf("bad run id %q: %v", args[i], err)
	}
	return id
}

func printRuns(runs []stethoscope.RunInfo) {
	if len(runs) == 0 {
		fmt.Println("(no recorded runs)")
		return
	}
	fmt.Printf("%-6s %-25s %12s %8s %6s %5s %-s\n", "ID", "START", "ELAPSED", "EVENTS", "ROWS", "OK", "SQL")
	for _, r := range runs {
		status := "yes"
		if !r.Complete {
			status = "part"
		} else if r.Err != "" {
			status = "err"
		}
		sql := r.SQL
		if len(sql) > 60 {
			sql = sql[:57] + "..."
		}
		fmt.Printf("%-6d %-25s %12s %8d %6d %5s %s\n",
			r.ID, r.Start.Format(time.RFC3339), time.Duration(r.ElapsedUs)*time.Microsecond,
			r.Events, r.Rows, status, sql)
	}
}

func show(h *stethoscope.History, id uint64) {
	run, err := h.Get(id)
	if err != nil {
		log.Fatal(err)
	}
	r := run.Info
	fmt.Printf("run %d\n  sql:          %s\n  start:        %s\n  elapsed:      %s\n  partitions:   %d\n  workers:      %d\n  instructions: %d\n  events:       %d\n  rows:         %d\n  cache hit:    %t\n",
		r.ID, r.SQL, r.Start.Format(time.RFC3339), time.Duration(r.ElapsedUs)*time.Microsecond,
		r.Partitions, r.Workers, r.Instructions, r.Events, r.Rows, r.CacheHit)
	if r.AutoTuned {
		fmt.Printf("  auto-tuned:   %s\n", r.TuneReason)
	}
	if r.Err != "" {
		fmt.Printf("  error:        %s\n", r.Err)
	}
	fmt.Println("\nmodule breakdown:")
	for _, m := range run.ModuleBreakdown() {
		fmt.Printf("  %-12s %6d calls %12s (%.1f%%)\n", m.Module, m.Calls,
			time.Duration(m.BusyUs)*time.Microsecond, 100*m.Share)
	}
	fmt.Println("\ncostliest instructions:")
	fmt.Print(stethoscope.RenderCostly(run.Costly(10), stethoscope.DefaultRender()))
}

func diff(h *stethoscope.History, a, b uint64) {
	d, err := h.Compare(a, b)
	if err != nil {
		log.Fatal(err)
	}
	verdict := "no regression"
	if d.Regression {
		verdict = "REGRESSION (>=10% slower)"
	}
	fmt.Printf("diff of runs %d -> %d  (%s)\n  sql:     %s\n  elapsed: %s -> %s (%+d us)  %s\n",
		d.A.ID, d.B.ID, verdict, d.A.SQL,
		time.Duration(d.A.ElapsedUs)*time.Microsecond, time.Duration(d.B.ElapsedUs)*time.Microsecond,
		d.ElapsedDeltaUs, verdict)
	fmt.Println("\nper-module deltas:")
	for _, m := range d.Modules {
		fmt.Printf("  %-12s %12d us -> %12d us  (%+d us)\n", m.Module, m.AUs, m.BUs, m.DeltaUs)
	}
	fmt.Println("\nlargest instruction deltas:")
	for i, in := range d.Instrs {
		if i >= 10 {
			break
		}
		stmt := in.Stmt
		if len(stmt) > 56 {
			stmt = stmt[:53] + "..."
		}
		fmt.Printf("  pc=%-5d %+10d us  %s\n", in.PC, in.DeltaUs, stmt)
	}
}

func report(h *stethoscope.History, id uint64) {
	a, err := h.Replay(id)
	if err != nil {
		log.Fatal(err)
	}
	if err := a.WriteReport(os.Stdout, stethoscope.ReportOptions{}); err != nil {
		log.Fatal(err)
	}
}

func writeSVG(h *stethoscope.History, id uint64, out string) {
	a, err := h.Replay(id)
	if err != nil {
		log.Fatal(err)
	}
	svg, err := a.SVG()
	if err != nil {
		log.Fatal(err)
	}
	if out == "" {
		out = fmt.Sprintf("run-%d.svg", id)
	}
	if err := os.WriteFile(out, []byte(svg), 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %s\n", out)
}

func export(h *stethoscope.History, id uint64, prefix string) {
	run, err := h.Get(id)
	if err != nil {
		log.Fatal(err)
	}
	if prefix == "" {
		prefix = fmt.Sprintf("run-%d", id)
	}
	if err := os.WriteFile(prefix+".dot", []byte(run.Dot()), 0o644); err != nil {
		log.Fatal(err)
	}
	if err := os.WriteFile(prefix+".trace", []byte(run.TraceText()), 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %s.dot and %s.trace (%d events)\n", prefix, prefix, run.TraceLen())
}

func rollup(h *stethoscope.History, kind string) {
	var (
		rows []stethoscope.AggStat
		err  error
	)
	switch kind {
	case "module":
		rows, err = h.ModuleRollup()
	case "operator":
		rows, err = h.OperatorRollup()
	default:
		log.Fatalf("unknown rollup kind %q (have module, operator)", kind)
	}
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-32s %8s %14s %7s\n", kind, "CALLS", "BUSY", "SHARE")
	for _, r := range rows {
		name := r.Name
		if name == "" {
			name = "(other)"
		}
		fmt.Printf("%-32s %8d %14s %6.1f%%\n", name, r.Calls,
			time.Duration(r.BusyUs)*time.Microsecond, 100*r.Share)
	}
}
