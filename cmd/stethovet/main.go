// Command stethovet is the project's invariant linter: a multichecker
// in the mold of go vet, running the internal/analyzers suite over the
// module. Each analyzer enforces one cross-cutting engine contract —
// kernel coverage, worker-loop cancellation, store error naming, the
// atomics policy, and the no-send-under-lock rule — at lint time
// instead of in review or at runtime.
//
// Usage:
//
//	go run ./cmd/stethovet ./...
//	go run ./cmd/stethovet -list
//	go run ./cmd/stethovet ./internal/engine ./internal/server
//
// Findings print as file:line:col: message (analyzer), one per line,
// and any finding makes the exit status 1 — the contract `make lint`
// and CI rely on. Suppress a reviewed finding with a
// //stetho:ignore <analyzer> <reason> comment on or above the line.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"stethoscope/internal/analyzers"
	"stethoscope/internal/analyzers/lintkit"
)

func main() {
	list := flag.Bool("list", false, "list the analyzers and exit")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: stethovet [-list] <packages>\n\npackages are go-style patterns relative to the module root: ./..., ./internal/engine, ./internal/...\n\nanalyzers:\n")
		for _, a := range analyzers.All() {
			fmt.Fprintf(flag.CommandLine.Output(), "  %-16s %s\n", a.Name, a.Doc)
		}
	}
	flag.Parse()

	if *list {
		for _, a := range analyzers.All() {
			fmt.Printf("%-16s %s\n", a.Name, a.Doc)
		}
		return
	}
	patterns := flag.Args()
	if len(patterns) == 0 {
		flag.Usage()
		os.Exit(2)
	}

	root, err := moduleRoot()
	if err != nil {
		fmt.Fprintln(os.Stderr, "stethovet:", err)
		os.Exit(2)
	}
	fset, pkgs, err := lintkit.Load(root, patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "stethovet:", err)
		os.Exit(2)
	}
	findings, err := lintkit.RunAnalyzers(fset, pkgs, analyzers.All())
	if err != nil {
		fmt.Fprintln(os.Stderr, "stethovet:", err)
		os.Exit(2)
	}
	for _, f := range findings {
		fmt.Println(f)
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "stethovet: %d finding(s)\n", len(findings))
		os.Exit(1)
	}
}

// moduleRoot walks up from the working directory to the nearest go.mod.
func moduleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod found above the working directory")
		}
		dir = parent
	}
}
