// Command docscheck is the documentation linter: it cross-checks the
// prose docs (README.md, DESIGN.md, ARCHITECTURE.md) against the tree
// they describe, so a rename or a deleted package fails `make lint`
// instead of leaving the docs quietly wrong.
//
// Three checks, all syntactic (the same no-downloads discipline as
// stethovet — packages load through internal/analyzers/lintkit):
//
//   - Backticked repo paths (`internal/...`, `cmd/...`, `examples/...`,
//     bare root files like `bench_test.go`) must exist.
//   - Backticked Go identifiers — exported names, optionally qualified
//     by one of this module's package names (`engine.RunContext`,
//     `DB.Stream`) — must be declared somewhere in the tree, test
//     files included.
//   - ARCHITECTURE.md must mention every internal package, so the
//     canonical map cannot silently fall behind a new subsystem.
//
// Spans the checker cannot attribute are skipped, never guessed at:
// fenced code blocks (illustrative samples), lowercase-only spans (MAL
// opcodes like `mat.pack`, wire keywords, shell fragments), ALL-CAPS
// tokens (`STATS`, `GOMAXPROCS`), spans with shell syntax, and
// qualifiers that are not this module's packages (`iter.Seq`). The
// point is zero false positives on the existing docs, not completeness
// — every flagged span is a real dangling reference.
//
// Usage: docscheck [-root dir] [doc.md ...]; with no args it checks
// README.md, DESIGN.md, and ARCHITECTURE.md under the root. Findings
// print as file:line: message and make the exit status 1.
package main

import (
	"flag"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"stethoscope/internal/analyzers/lintkit"
)

func main() {
	root := flag.String("root", ".", "module root to check the docs against")
	flag.Parse()
	docs := flag.Args()
	if len(docs) == 0 {
		docs = []string{"README.md", "DESIGN.md", "ARCHITECTURE.md"}
	}

	known, pkgSegs, err := declaredNames(*root)
	if err != nil {
		fmt.Fprintln(os.Stderr, "docscheck:", err)
		os.Exit(2)
	}

	var findings []string
	for _, doc := range docs {
		f, err := checkDoc(*root, doc, known, pkgSegs)
		if err != nil {
			fmt.Fprintln(os.Stderr, "docscheck:", err)
			os.Exit(2)
		}
		findings = append(findings, f...)
	}
	findings = append(findings, checkArchitectureComplete(*root)...)

	sort.Strings(findings)
	for _, f := range findings {
		fmt.Println(f)
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "docscheck: %d dangling reference(s)\n", len(findings))
		os.Exit(1)
	}
}

// declaredNames loads every package of the module (non-test sources via
// the lintkit loader, test files via a direct walk) and returns the set
// of declared identifiers — functions, methods, types, struct fields,
// interface methods, consts, vars — plus the set of package-name
// segments usable as qualifiers in the docs.
func declaredNames(root string) (known, pkgSegs map[string]bool, err error) {
	_, pkgs, err := lintkit.Load(root, "./...")
	if err != nil {
		return nil, nil, err
	}
	known = map[string]bool{}
	pkgSegs = map[string]bool{"stethoscope": true}
	for _, p := range pkgs {
		pkgSegs[p.Seg()] = true
		for _, f := range p.Files {
			collect(f, known)
		}
	}
	// Test files declare doc-referenced names too (benchmarks, the
	// equality-sweep tests); the lintkit loader deliberately skips them.
	fset := token.NewFileSet()
	err = filepath.WalkDir(root, func(path string, d fs.DirEntry, werr error) error {
		if werr != nil {
			return werr
		}
		if d.IsDir() {
			name := d.Name()
			if path != root && (name == "testdata" || name == "vendor" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(d.Name(), "_test.go") {
			return nil
		}
		f, perr := parser.ParseFile(fset, path, nil, parser.SkipObjectResolution)
		if perr != nil {
			return perr
		}
		collect(f, known)
		return nil
	})
	if err != nil {
		return nil, nil, err
	}
	return known, pkgSegs, nil
}

// collect walks one file and records every declared name: top-level
// decls, methods, struct fields, and interface methods. Function
// parameters ride along through the shared *ast.Field case; they only
// widen the known set, which errs on the quiet side.
func collect(f *ast.File, known map[string]bool) {
	ast.Inspect(f, func(n ast.Node) bool {
		switch d := n.(type) {
		case *ast.FuncDecl:
			known[d.Name.Name] = true
		case *ast.TypeSpec:
			known[d.Name.Name] = true
		case *ast.ValueSpec:
			for _, name := range d.Names {
				known[name.Name] = true
			}
		case *ast.Field:
			for _, name := range d.Names {
				known[name.Name] = true
			}
		}
		return true
	})
}

// checkDoc scans one markdown file's inline code spans (fenced blocks
// are skipped) and returns a finding per dangling reference.
func checkDoc(root, doc string, known, pkgSegs map[string]bool) ([]string, error) {
	data, err := os.ReadFile(filepath.Join(root, doc))
	if err != nil {
		return nil, err
	}
	var findings []string
	fenced := false
	for i, line := range strings.Split(string(data), "\n") {
		if strings.HasPrefix(strings.TrimSpace(line), "```") {
			fenced = !fenced
			continue
		}
		if fenced {
			continue
		}
		parts := strings.Split(line, "`")
		// Odd indices are inside backticks; an unbalanced trailing part
		// (no closing backtick on the line) is ignored.
		for j := 1; j < len(parts)-1; j += 2 {
			if msg := checkSpan(root, parts[j], known, pkgSegs); msg != "" {
				findings = append(findings, fmt.Sprintf("%s:%d: %s", doc, i+1, msg))
			}
		}
	}
	return findings, nil
}

func isPathSafe(s string) bool {
	for _, r := range s {
		if !(r >= 'a' && r <= 'z' || r >= 'A' && r <= 'Z' || r >= '0' && r <= '9' ||
			r == '_' || r == '.' || r == '/' || r == '-') {
			return false
		}
	}
	return true
}

func isIdent(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		alpha := r >= 'a' && r <= 'z' || r >= 'A' && r <= 'Z' || r == '_'
		if !alpha && (i == 0 || !(r >= '0' && r <= '9')) {
			return false
		}
	}
	return true
}

// allCaps reports a token like STATS, GOMAXPROCS, or EVTB — protocol
// keywords and environment names, not Go identifiers.
func allCaps(s string) bool {
	if len(s) < 2 {
		return false
	}
	return s == strings.ToUpper(s) && s != strings.ToLower(s)
}

// checkSpan classifies one inline code span and returns a finding
// message for a dangling reference, or "" when the span is fine or not
// attributable.
func checkSpan(root, span string, known, pkgSegs map[string]bool) string {
	s := strings.TrimSpace(span)
	if s == "" {
		return ""
	}
	// `WithResultCache(n, ttl)` → `WithResultCache`; a paren anywhere
	// else (shell fragments) makes the span unattributable.
	if i := strings.IndexByte(s, '('); i >= 0 {
		if !strings.HasSuffix(s, ")") {
			return ""
		}
		s = s[:i]
	}
	s = strings.TrimPrefix(s, "./")

	// Repo paths: only this module's trees are enforced — `go/ast` or
	// `database/sql` are someone else's namespace.
	if strings.HasPrefix(s, "internal/") || strings.HasPrefix(s, "cmd/") || strings.HasPrefix(s, "examples/") {
		if !isPathSafe(s) {
			return ""
		}
		p := strings.TrimSuffix(strings.TrimSuffix(s, "/..."), "/")
		if _, err := os.Stat(filepath.Join(root, p)); err != nil {
			return fmt.Sprintf("path %q does not exist in the tree", p)
		}
		return ""
	}
	if strings.ContainsAny(s, "/\\") {
		return ""
	}
	// A bare root file (`bench_test.go`, `DESIGN.md`, `Makefile`): fine
	// if it exists; otherwise fall through to the identifier rules.
	if _, err := os.Stat(filepath.Join(root, s)); err == nil {
		return ""
	}
	if strings.HasSuffix(s, ".go") || strings.HasSuffix(s, ".md") {
		return fmt.Sprintf("file %q does not exist at the repo root", s)
	}
	// Other file-extension spans (`BENCH_baseline.json`, `plan.svg`) are
	// runtime artifacts, not tree contents.
	if i := strings.LastIndexByte(s, '.'); i > 0 {
		switch s[i+1:] {
		case "json", "yml", "yaml", "svg", "csv", "dot", "trace", "tlog", "col", "mod", "txt":
			return ""
		}
	}

	segs := strings.Split(s, ".")
	for _, seg := range segs {
		if !isIdent(seg) {
			return ""
		}
	}
	// A lowercase qualifier that is not one of this module's packages
	// (`iter.Seq`, `mat.pack`) is outside our namespace.
	if len(segs) > 1 && !segIsUpper(segs[0]) && !pkgSegs[segs[0]] {
		return ""
	}
	for _, seg := range segs {
		if allCaps(seg) || !segIsUpper(seg) {
			continue // keywords, opcodes, locals: not attributable
		}
		if !known[seg] && !pkgSegs[seg] {
			return fmt.Sprintf("identifier %q (in `%s`) is not declared anywhere in the tree", seg, span)
		}
	}
	return ""
}

func segIsUpper(s string) bool {
	return s != "" && s[0] >= 'A' && s[0] <= 'Z'
}

// checkArchitectureComplete walks internal/ for package directories
// (any directory holding .go files, test-only packages included) and
// requires ARCHITECTURE.md to mention each one by its repo-relative
// path.
func checkArchitectureComplete(root string) []string {
	data, err := os.ReadFile(filepath.Join(root, "ARCHITECTURE.md"))
	if err != nil {
		return []string{fmt.Sprintf("ARCHITECTURE.md: %v", err)}
	}
	text := string(data)
	var findings []string
	seen := map[string]bool{}
	filepath.WalkDir(filepath.Join(root, "internal"), func(path string, d fs.DirEntry, werr error) error {
		if werr != nil {
			return werr
		}
		if d.IsDir() {
			if d.Name() == "testdata" {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(d.Name(), ".go") {
			return nil
		}
		dir := filepath.Dir(path)
		rel, err := filepath.Rel(root, dir)
		if err != nil || seen[rel] {
			return nil
		}
		seen[rel] = true
		if !strings.Contains(text, filepath.ToSlash(rel)) {
			findings = append(findings,
				fmt.Sprintf("ARCHITECTURE.md:1: package %q is not mentioned — the package map is incomplete", filepath.ToSlash(rel)))
		}
		return nil
	})
	return findings
}
