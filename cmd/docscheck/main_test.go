package main

import (
	"os"
	"path/filepath"
	"testing"
)

func TestCheckSpan(t *testing.T) {
	root := t.TempDir()
	for _, d := range []string{"internal/engine", "cmd/tool"} {
		if err := os.MkdirAll(filepath.Join(root, d), 0o755); err != nil {
			t.Fatal(err)
		}
	}
	for _, f := range []string{"README.md", "bench_test.go", "Makefile"} {
		if err := os.WriteFile(filepath.Join(root, f), nil, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	known := map[string]bool{"Exec": true, "DB": true, "Stats": true, "RunContext": true}
	pkgSegs := map[string]bool{"stethoscope": true, "engine": true}

	cases := []struct {
		span string
		ok   bool
	}{
		{"internal/engine", true},
		{"internal/engine/...", true},
		{"internal/gone", false},
		{"cmd/tool", true},
		{"cmd/missing", false},
		{"bench_test.go", true},
		{"missing_test.go", false},
		{"Makefile", true},
		{"README.md", true},
		{"DB.Exec", true},
		{"DB.Gone", false},
		{"Gone", false},
		{"engine.RunContext", true},
		{"engine.Vanished", false},
		{"engine.lowercase", true},    // unexported: not attributable
		{"mat.pack", true},            // not our qualifier namespace
		{"iter.Seq", true},            // stdlib qualifier: skipped
		{"STATS", true},               // protocol keyword
		{"GOMAXPROCS", true},          // env name
		{"Exec(ctx, sql)", true},      // call form strips to Exec
		{"Gone(ctx)", false},          // call form still checked
		{"SET morsel auto", true},     // spaces: not attributable
		{"go test -race", true},       // shell fragment
		{"BENCH_baseline.json", true}, // runtime artifact extension
		{"res.Stats", true},           // local qualifier, known field
		{"0.005", true},               // number
		{"/metrics", true},            // URL path
	}
	for _, c := range cases {
		msg := checkSpan(root, c.span, known, pkgSegs)
		if c.ok && msg != "" {
			t.Errorf("span %q: unexpected finding %q", c.span, msg)
		}
		if !c.ok && msg == "" {
			t.Errorf("span %q: expected a finding, got none", c.span)
		}
	}
}

func TestCheckDocSkipsFencedBlocks(t *testing.T) {
	root := t.TempDir()
	doc := "a `Gone` b\n```\n`AlsoGone` inside a fence\n```\nplain line\n"
	if err := os.WriteFile(filepath.Join(root, "X.md"), []byte(doc), 0o644); err != nil {
		t.Fatal(err)
	}
	findings, err := checkDoc(root, "X.md", map[string]bool{}, map[string]bool{})
	if err != nil {
		t.Fatal(err)
	}
	if len(findings) != 1 {
		t.Fatalf("findings = %v, want exactly the unfenced `Gone`", findings)
	}
}
