// Command stethoscope is the analysis client of the reproduction. It
// runs in the paper's two modes:
//
// Offline — analyze a pre-existing dot + trace pair:
//
//	stethoscope -dot plan.dot -trace plan.trace [-svg out.svg]
//	            [-color pair|threshold|gradient] [-threshold-us 1000]
//
// Online — attach to a running mserver, execute a query, and analyze the
// live stream:
//
//	stethoscope -server 127.0.0.1:50000 -query "select ..." \
//	            [-partitions 8] [-workers 4]
//
// Watch — poll a server's in-flight query progress (the PROGRESS wire
// command) and render live progress bars until interrupted:
//
//	stethoscope -server 127.0.0.1:50000 -watch [-watch-interval 200ms]
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"time"

	"stethoscope"
)

func main() {
	dotPath := flag.String("dot", "", "offline: dot file path")
	tracePath := flag.String("trace", "", "offline: trace file path")
	svgPath := flag.String("svg", "", "write the colored display window as SVG")
	colorAlgo := flag.String("color", "pair", "coloring algorithm: pair, threshold, gradient")
	thresholdUs := flag.Int64("threshold-us", 1000, "threshold for -color threshold")
	serverAddr := flag.String("server", "", "online: mserver TCP address")
	query := flag.String("query", "select l_tax from lineitem where l_partkey=1", "online: query to run")
	partitions := flag.Int("partitions", 4, "online: mitosis partitions")
	workers := flag.Int("workers", 4, "online: dataflow workers")
	width := flag.Int("width", 120, "terminal render width")
	ansi := flag.Bool("ansi", false, "colorize terminal output")
	topK := flag.Int("top", 10, "costly instructions to list")
	watchMode := flag.Bool("watch", false, "online: poll the server's in-flight query progress instead of running a query")
	watchEvery := flag.Duration("watch-interval", 200*time.Millisecond, "poll interval for -watch")
	flag.Parse()

	if *watchMode {
		if *serverAddr == "" {
			fmt.Fprintln(os.Stderr, "-watch needs -server")
			os.Exit(2)
		}
		watch(*serverAddr, *watchEvery)
		return
	}

	algo, err := stethoscope.ParseColorAlgo(*colorAlgo)
	if err != nil {
		log.Fatal(err)
	}
	opts := []stethoscope.AnalyzeOption{
		stethoscope.WithColoring(algo),
		stethoscope.WithThreshold(*thresholdUs),
	}
	render := stethoscope.RenderOptions{Width: *width, ANSI: *ansi}

	var a *stethoscope.Analysis
	switch {
	case *dotPath != "" && *tracePath != "":
		a = offline(*dotPath, *tracePath, opts)
	case *serverAddr != "":
		a = online(*serverAddr, *query, *partitions, *workers, opts)
	default:
		fmt.Fprintln(os.Stderr, "need either -dot/-trace (offline) or -server (online)")
		flag.Usage()
		os.Exit(2)
	}

	if err := a.WriteReport(os.Stdout, stethoscope.ReportOptions{Render: render, TopK: *topK}); err != nil {
		log.Fatalf("report: %v", err)
	}
	if *svgPath != "" {
		out, err := a.SVG()
		if err != nil {
			log.Fatalf("svg: %v", err)
		}
		if err := os.WriteFile(*svgPath, []byte(out), 0o644); err != nil {
			log.Fatalf("write svg: %v", err)
		}
		fmt.Printf("\ndisplay window written to %s\n", *svgPath)
	}
}

func offline(dotPath, tracePath string, opts []stethoscope.AnalyzeOption) *stethoscope.Analysis {
	dotText, err := os.ReadFile(dotPath)
	if err != nil {
		log.Fatalf("read dot: %v", err)
	}
	traceText, err := os.ReadFile(tracePath)
	if err != nil {
		log.Fatalf("read trace: %v", err)
	}
	a, err := stethoscope.OpenOffline(string(dotText), string(traceText), opts...)
	if err != nil {
		log.Fatalf("open: %v", err)
	}
	return a
}

func online(addr, query string, partitions, workers int, opts []stethoscope.AnalyzeOption) *stethoscope.Analysis {
	ctx := context.Background()
	mon, err := stethoscope.Attach(ctx, "127.0.0.1:0")
	if err != nil {
		log.Fatalf("monitor: %v", err)
	}
	defer mon.Close()
	fmt.Printf("monitor listening on %s\n", mon.Addr())

	r, err := stethoscope.Dial(addr)
	if err != nil {
		log.Fatalf("connect: %v", err)
	}
	defer r.Close()
	if err := r.TraceTo(mon.Addr()); err != nil {
		log.Fatalf("trace: %v", err)
	}
	if err := r.Configure(partitions, workers); err != nil {
		log.Fatalf("configure: %v", err)
	}
	fmt.Printf("running: %s\n", query)
	rows, err := r.Query(query)
	if err != nil {
		log.Fatalf("query: %v", err)
	}
	fmt.Printf("result: %d data rows\n", max(0, len(rows)-1))

	waitCtx, cancel := context.WithTimeout(ctx, 10*time.Second)
	defer cancel()
	source, err := mon.WaitComplete(waitCtx)
	if err != nil {
		log.Fatal(err)
	}
	a, err := mon.Analyze(source, opts...)
	if err != nil {
		log.Fatalf("session: %v", err)
	}
	return a
}

// watch polls the server's PROGRESS command and redraws one progress
// bar per in-flight query until the process is interrupted.
func watch(addr string, every time.Duration) {
	r, err := stethoscope.Dial(addr)
	if err != nil {
		log.Fatalf("connect: %v", err)
	}
	defer r.Close()
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	fmt.Printf("watching %s (interval %s, ctrl-c to stop)\n", addr, every)
	tick := time.NewTicker(every)
	defer tick.Stop()
	prev := 0
	for {
		lines, err := r.Progress()
		if err != nil {
			log.Fatalf("progress: %v", err)
		}
		if prev > 0 {
			fmt.Printf("\x1b[%dA", prev) // cursor back up over the last frame
		}
		if len(lines) == 0 {
			lines = []string{""}
		}
		for _, ln := range lines {
			out := "(idle)"
			if ln != "" {
				out = progressBar(ln)
			}
			fmt.Printf("\x1b[2K%s\n", out)
		}
		// Blank out leftover rows when the in-flight set shrank.
		for i := len(lines); i < prev; i++ {
			fmt.Print("\x1b[2K\n")
		}
		prev = max(prev, len(lines))
		select {
		case <-ctx.Done():
			return
		case <-tick.C:
		}
	}
}

// progressBar renders one PROGRESS k=v line as a bar. The sql field is
// quoted and always last, so split it off before cutting on spaces.
func progressBar(line string) string {
	sql := ""
	if i := strings.Index(line, " sql="); i >= 0 {
		if s, err := strconv.Unquote(strings.TrimSpace(line[i+len(" sql="):])); err == nil {
			sql = s
		}
		line = line[:i]
	}
	kv := make(map[string]string)
	for _, f := range strings.Fields(line) {
		if k, v, ok := strings.Cut(f, "="); ok {
			kv[k] = v
		}
	}
	frac, _ := strconv.ParseFloat(kv["fraction"], 64)
	const w = 30
	full := int(frac*w + 0.5)
	if full > w {
		full = w
	}
	bar := strings.Repeat("#", full) + strings.Repeat(".", w-full)
	return fmt.Sprintf("[%s] %5.1f%%  id=%s rows=%s/%s instr=%s/%s  %s",
		bar, frac*100, kv["id"], kv["rows_scanned"], kv["rows_total"],
		kv["instr_done"], kv["instr_total"], sql)
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
