// Command stethoscope is the analysis client of the reproduction. It
// runs in the paper's two modes:
//
// Offline — analyze a pre-existing dot + trace pair:
//
//	stethoscope -dot plan.dot -trace plan.trace [-svg out.svg]
//	            [-color pair|threshold|gradient] [-threshold-us 1000]
//
// Online — attach to a running mserver, execute a query, and analyze the
// live stream:
//
//	stethoscope -server 127.0.0.1:50000 -query "select ..." \
//	            [-partitions 8] [-workers 4]
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"stethoscope"
)

func main() {
	dotPath := flag.String("dot", "", "offline: dot file path")
	tracePath := flag.String("trace", "", "offline: trace file path")
	svgPath := flag.String("svg", "", "write the colored display window as SVG")
	colorAlgo := flag.String("color", "pair", "coloring algorithm: pair, threshold, gradient")
	thresholdUs := flag.Int64("threshold-us", 1000, "threshold for -color threshold")
	serverAddr := flag.String("server", "", "online: mserver TCP address")
	query := flag.String("query", "select l_tax from lineitem where l_partkey=1", "online: query to run")
	partitions := flag.Int("partitions", 4, "online: mitosis partitions")
	workers := flag.Int("workers", 4, "online: dataflow workers")
	width := flag.Int("width", 120, "terminal render width")
	ansi := flag.Bool("ansi", false, "colorize terminal output")
	topK := flag.Int("top", 10, "costly instructions to list")
	flag.Parse()

	algo, err := stethoscope.ParseColorAlgo(*colorAlgo)
	if err != nil {
		log.Fatal(err)
	}
	opts := []stethoscope.AnalyzeOption{
		stethoscope.WithColoring(algo),
		stethoscope.WithThreshold(*thresholdUs),
	}
	render := stethoscope.RenderOptions{Width: *width, ANSI: *ansi}

	var a *stethoscope.Analysis
	switch {
	case *dotPath != "" && *tracePath != "":
		a = offline(*dotPath, *tracePath, opts)
	case *serverAddr != "":
		a = online(*serverAddr, *query, *partitions, *workers, opts)
	default:
		fmt.Fprintln(os.Stderr, "need either -dot/-trace (offline) or -server (online)")
		flag.Usage()
		os.Exit(2)
	}

	if err := a.WriteReport(os.Stdout, stethoscope.ReportOptions{Render: render, TopK: *topK}); err != nil {
		log.Fatalf("report: %v", err)
	}
	if *svgPath != "" {
		out, err := a.SVG()
		if err != nil {
			log.Fatalf("svg: %v", err)
		}
		if err := os.WriteFile(*svgPath, []byte(out), 0o644); err != nil {
			log.Fatalf("write svg: %v", err)
		}
		fmt.Printf("\ndisplay window written to %s\n", *svgPath)
	}
}

func offline(dotPath, tracePath string, opts []stethoscope.AnalyzeOption) *stethoscope.Analysis {
	dotText, err := os.ReadFile(dotPath)
	if err != nil {
		log.Fatalf("read dot: %v", err)
	}
	traceText, err := os.ReadFile(tracePath)
	if err != nil {
		log.Fatalf("read trace: %v", err)
	}
	a, err := stethoscope.OpenOffline(string(dotText), string(traceText), opts...)
	if err != nil {
		log.Fatalf("open: %v", err)
	}
	return a
}

func online(addr, query string, partitions, workers int, opts []stethoscope.AnalyzeOption) *stethoscope.Analysis {
	ctx := context.Background()
	mon, err := stethoscope.Attach(ctx, "127.0.0.1:0")
	if err != nil {
		log.Fatalf("monitor: %v", err)
	}
	defer mon.Close()
	fmt.Printf("monitor listening on %s\n", mon.Addr())

	r, err := stethoscope.Dial(addr)
	if err != nil {
		log.Fatalf("connect: %v", err)
	}
	defer r.Close()
	if err := r.TraceTo(mon.Addr()); err != nil {
		log.Fatalf("trace: %v", err)
	}
	if err := r.Configure(partitions, workers); err != nil {
		log.Fatalf("configure: %v", err)
	}
	fmt.Printf("running: %s\n", query)
	rows, err := r.Query(query)
	if err != nil {
		log.Fatalf("query: %v", err)
	}
	fmt.Printf("result: %d data rows\n", max(0, len(rows)-1))

	waitCtx, cancel := context.WithTimeout(ctx, 10*time.Second)
	defer cancel()
	source, err := mon.WaitComplete(waitCtx)
	if err != nil {
		log.Fatal(err)
	}
	a, err := mon.Analyze(source, opts...)
	if err != nil {
		log.Fatalf("session: %v", err)
	}
	return a
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
