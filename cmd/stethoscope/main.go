// Command stethoscope is the analysis client of the reproduction. It
// runs in the paper's two modes:
//
// Offline — analyze a pre-existing dot + trace pair:
//
//	stethoscope -dot plan.dot -trace plan.trace [-svg out.svg]
//	            [-color pair|threshold|gradient] [-threshold-us 1000]
//
// Online — attach to a running mserver, execute a query, and analyze the
// live stream:
//
//	stethoscope -server 127.0.0.1:50000 -query "select ..." \
//	            [-partitions 8] [-workers 4]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"stethoscope/internal/ascii"
	"stethoscope/internal/core"
	"stethoscope/internal/server"
)

func main() {
	dotPath := flag.String("dot", "", "offline: dot file path")
	tracePath := flag.String("trace", "", "offline: trace file path")
	svgPath := flag.String("svg", "", "write the colored display window as SVG")
	colorAlgo := flag.String("color", "pair", "coloring algorithm: pair, threshold, gradient")
	thresholdUs := flag.Int64("threshold-us", 1000, "threshold for -color threshold")
	serverAddr := flag.String("server", "", "online: mserver TCP address")
	query := flag.String("query", "select l_tax from lineitem where l_partkey=1", "online: query to run")
	partitions := flag.Int("partitions", 4, "online: mitosis partitions")
	workers := flag.Int("workers", 4, "online: dataflow workers")
	width := flag.Int("width", 120, "terminal render width")
	ansi := flag.Bool("ansi", false, "colorize terminal output")
	topK := flag.Int("top", 10, "costly instructions to list")
	flag.Parse()

	switch {
	case *dotPath != "" && *tracePath != "":
		offline(*dotPath, *tracePath, *svgPath, *colorAlgo, *thresholdUs, *width, *ansi, *topK)
	case *serverAddr != "":
		online(*serverAddr, *query, *partitions, *workers, *svgPath, *width, *ansi, *topK)
	default:
		fmt.Fprintln(os.Stderr, "need either -dot/-trace (offline) or -server (online)")
		flag.Usage()
		os.Exit(2)
	}
}

func offline(dotPath, tracePath, svgPath, colorAlgo string, thresholdUs int64, width int, ansi0 bool, topK int) {
	dotText, err := os.ReadFile(dotPath)
	if err != nil {
		log.Fatalf("read dot: %v", err)
	}
	traceText, err := os.ReadFile(tracePath)
	if err != nil {
		log.Fatalf("read trace: %v", err)
	}
	sess, err := core.OpenOffline(string(dotText), string(traceText), core.SessionOptions{})
	if err != nil {
		log.Fatalf("open: %v", err)
	}
	report(sess, colorAlgo, thresholdUs, svgPath, width, ansi0, topK)
}

func online(addr, query string, partitions, workers int, svgPath string, width int, ansi0 bool, topK int) {
	ts, err := core.StartTextual("127.0.0.1:0", 4096)
	if err != nil {
		log.Fatalf("textual stethoscope: %v", err)
	}
	defer ts.Close()
	fmt.Printf("textual stethoscope listening on %s\n", ts.Addr())

	c, err := server.DialServer(addr)
	if err != nil {
		log.Fatalf("connect: %v", err)
	}
	defer c.Close()
	for _, cmd := range []string{
		"TRACE " + ts.Addr(),
		fmt.Sprintf("SET partitions %d", partitions),
		fmt.Sprintf("SET workers %d", workers),
	} {
		if _, _, err := c.Command(cmd); err != nil {
			log.Fatalf("%s: %v", cmd, err)
		}
	}
	fmt.Printf("running: %s\n", query)
	if _, rows, err := c.Command("QUERY " + query); err != nil {
		log.Fatalf("query: %v", err)
	} else {
		fmt.Printf("result: %d data rows\n", max(0, len(rows)-1))
	}

	// Wait for the stream to complete (dot + events).
	deadline := time.Now().Add(10 * time.Second)
	var srvAddr string
	for time.Now().Before(deadline) && srvAddr == "" {
		for _, a := range ts.Servers() {
			ss, _ := ts.Server(a)
			if _, err := ss.Graph(); err == nil && len(ss.Events()) > 0 {
				srvAddr = a
			}
		}
		time.Sleep(5 * time.Millisecond)
	}
	if srvAddr == "" {
		log.Fatal("no complete stream received")
	}
	// Allow stragglers to drain.
	time.Sleep(100 * time.Millisecond)
	sess, err := ts.OpenOnlineSession(srvAddr, core.SessionOptions{})
	if err != nil {
		log.Fatalf("session: %v", err)
	}
	report(sess, "pair", 1000, svgPath, width, ansi0, topK)
}

func report(sess *core.Session, colorAlgo string, thresholdUs int64, svgPath string, width int, ansi0 bool, topK int) {
	opt := ascii.Options{Width: width, ANSI: ansi0}

	var coloring core.Coloring
	switch colorAlgo {
	case "threshold":
		coloring = core.Threshold(sess.Trace.Events(), thresholdUs)
	case "gradient":
		coloring, _ = core.Gradient(sess.Trace.Events())
	default:
		coloring = core.PairElision(sess.Trace.Events())
	}

	fmt.Printf("\n=== plan graph (%d nodes, %d edges; coloring: %s) ===\n",
		len(sess.Graph.Nodes), len(sess.Graph.Edges), colorAlgo)
	fmt.Print(ascii.RenderGraph(sess.Graph, sess.Layout, coloring.Fills(), opt))

	fmt.Println("\n=== costly instructions ===")
	fmt.Print(ascii.RenderCostly(core.TopCostly(sess.Trace, topK), opt))

	fmt.Println("\n=== multi-core utilization ===")
	fmt.Print(ascii.RenderUtilization(core.Utilize(sess.Trace), opt))

	fmt.Println("\n=== birds-eye view ===")
	fmt.Print(ascii.RenderBirdsEye(core.BirdsEye(sess.Trace, 8), opt))

	fmt.Println("\n=== thread timeline ===")
	fmt.Print(ascii.RenderGantt(core.ThreadTimeline(sess.Trace), opt))

	fmt.Println("\n=== micro analysis ===")
	fmt.Print(core.MicroReport(sess.Trace))

	if !sess.Mapping.Complete() {
		fmt.Printf("\nwarning: %d unmatched pcs, %d label mismatches\n",
			len(sess.Mapping.Unmatched), len(sess.Mapping.LabelMismatches))
	}

	if svgPath != "" {
		// Apply the chosen coloring to the glyph space and render.
		for pc, color := range coloring {
			sess.Space.SetNodeColor(fmt.Sprintf("n%d", pc), string(color))
		}
		out, err := sess.RenderSVG()
		if err != nil {
			log.Fatalf("svg: %v", err)
		}
		if err := os.WriteFile(svgPath, []byte(out), 0o644); err != nil {
			log.Fatalf("write svg: %v", err)
		}
		fmt.Printf("\ndisplay window written to %s\n", svgPath)
	}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
