// Command tracegen produces matched dot-file and trace-file pairs for
// offline Stethoscope analysis: it compiles a SQL query against a
// synthetic TPC-H catalog, executes it under the profiler, and writes
// <out>.dot and <out>.trace. With -store it additionally records the
// run into a durable trace store, so tracehist demos work without a
// live server.
//
// Usage:
//
//	tracegen -q "select l_tax from lineitem where l_partkey=1" -o plan \
//	         -partitions 8 -workers 4 -sf 0.01 [-store .history]
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"

	"stethoscope"
)

func main() {
	query := flag.String("q", "select l_tax from lineitem where l_partkey=1", "SQL query")
	out := flag.String("o", "plan", "output file prefix")
	partitions := flag.Int("partitions", 1, "mitosis partition count")
	workers := flag.Int("workers", 1, "dataflow worker count")
	sf := flag.Float64("sf", 0.01, "TPC-H scale factor")
	seed := flag.Uint64("seed", 42, "data generator seed")
	store := flag.String("store", "", "also record the run into the trace store at this directory")
	flag.Parse()

	db, err := stethoscope.Open(stethoscope.WithScaleFactor(*sf), stethoscope.WithSeed(*seed))
	if err != nil {
		log.Fatalf("open: %v", err)
	}
	res, err := db.Exec(context.Background(), *query,
		stethoscope.ExecPartitions(*partitions), stethoscope.ExecWorkers(*workers))
	if err != nil {
		log.Fatalf("run: %v", err)
	}
	log.Println(res.Stats.Optimizer)

	dotPath := *out + ".dot"
	if err := os.WriteFile(dotPath, []byte(res.Dot()), 0o644); err != nil {
		log.Fatalf("write dot: %v", err)
	}
	tracePath := *out + ".trace"
	f, err := os.Create(tracePath)
	if err != nil {
		log.Fatalf("create trace: %v", err)
	}
	if err := res.WriteTrace(f); err != nil {
		log.Fatalf("write trace: %v", err)
	}
	if err := f.Close(); err != nil {
		log.Fatalf("close: %v", err)
	}

	fmt.Printf("query returned %d rows\n", res.RowCount())
	fmt.Printf("plan: %d instructions -> %s\n", res.Stats.Instructions, dotPath)
	fmt.Printf("trace: %d events      -> %s\n", res.TraceLen(), tracePath)

	if *store != "" {
		h, err := stethoscope.OpenHistory(*store)
		if err != nil {
			log.Fatalf("open store: %v", err)
		}
		id, err := h.Record(res)
		if err != nil {
			log.Fatalf("record run: %v", err)
		}
		if err := h.Close(); err != nil {
			log.Fatalf("close store: %v", err)
		}
		fmt.Printf("history: recorded as run %d in %s\n", id, *store)
	}
}
