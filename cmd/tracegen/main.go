// Command tracegen produces matched dot-file and trace-file pairs for
// offline Stethoscope analysis: it compiles a SQL query against a
// synthetic TPC-H catalog, executes it under the profiler, and writes
// <out>.dot and <out>.trace.
//
// Usage:
//
//	tracegen -q "select l_tax from lineitem where l_partkey=1" -o plan \
//	         -partitions 8 -workers 4 -sf 0.01
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"stethoscope/internal/algebra"
	"stethoscope/internal/compiler"
	"stethoscope/internal/dot"
	"stethoscope/internal/engine"
	"stethoscope/internal/optimizer"
	"stethoscope/internal/profiler"
	"stethoscope/internal/sql"
	"stethoscope/internal/storage"
	"stethoscope/internal/tpch"
)

func main() {
	query := flag.String("q", "select l_tax from lineitem where l_partkey=1", "SQL query")
	out := flag.String("o", "plan", "output file prefix")
	partitions := flag.Int("partitions", 1, "mitosis partition count")
	workers := flag.Int("workers", 1, "dataflow worker count")
	sf := flag.Float64("sf", 0.01, "TPC-H scale factor")
	seed := flag.Uint64("seed", 42, "data generator seed")
	flag.Parse()

	cat := storage.NewCatalog()
	if err := tpch.Load(cat, tpch.Config{SF: *sf, Seed: *seed}); err != nil {
		log.Fatalf("tpch: %v", err)
	}

	stmt, err := sql.Parse(*query)
	if err != nil {
		log.Fatalf("parse: %v", err)
	}
	tree, err := algebra.Bind(stmt, cat)
	if err != nil {
		log.Fatalf("bind: %v", err)
	}
	plan, err := compiler.Compile(tree, stmt.Text, compiler.Options{Partitions: *partitions})
	if err != nil {
		log.Fatalf("compile: %v", err)
	}
	plan, stats, err := optimizer.Default().Run(plan)
	if err != nil {
		log.Fatalf("optimize: %v", err)
	}
	log.Println(stats)

	dotPath := *out + ".dot"
	if err := os.WriteFile(dotPath, []byte(dot.Export(plan).Marshal()), 0o644); err != nil {
		log.Fatalf("write dot: %v", err)
	}

	tracePath := *out + ".trace"
	f, err := os.Create(tracePath)
	if err != nil {
		log.Fatalf("create trace: %v", err)
	}
	sink := profiler.NewWriterSink(f)
	prof := profiler.New(sink)

	eng := engine.New(cat)
	res, err := eng.Run(plan, engine.Options{Workers: *workers, Profiler: prof})
	if err != nil {
		log.Fatalf("run: %v", err)
	}
	if err := sink.Flush(); err != nil {
		log.Fatalf("flush: %v", err)
	}
	if err := f.Close(); err != nil {
		log.Fatalf("close: %v", err)
	}

	fmt.Printf("query returned %d rows\n", res.Rows())
	fmt.Printf("plan: %d instructions -> %s\n", len(plan.Instrs), dotPath)
	fmt.Printf("trace: %d events      -> %s\n", 2*len(plan.Instrs), tracePath)
}
