// Command maldbg is the GDB-like MAL debugger (paper §2: "MonetDB
// provides a GDB-like MAL debugger for runtime inspection") — the
// textual tool Stethoscope improves on. It compiles a query and opens an
// interactive stepping session.
//
// Usage:
//
//	maldbg -q "select l_tax from lineitem where l_partkey=1" [-partitions 4]
//
// Commands: list | step (s) | continue (c) | break <pc> | breakmod <m> |
// print <X_n> | result | quit
package main

import (
	"bufio"
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"
	"strings"

	"stethoscope"
)

func main() {
	query := flag.String("q", "select l_tax from lineitem where l_partkey=1", "SQL query to debug")
	partitions := flag.Int("partitions", 1, "mitosis partitions")
	sf := flag.Float64("sf", 0.005, "TPC-H scale factor")
	flag.Parse()

	db, err := stethoscope.Open(stethoscope.WithScaleFactor(*sf), stethoscope.WithSeed(42))
	if err != nil {
		log.Fatal(err)
	}
	dbg, err := db.Debug(*query, stethoscope.ExecPartitions(*partitions))
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("mal debugger: %d instructions; 'list' to view, 'help' for commands\n", dbg.PlanSize())
	sc := bufio.NewScanner(os.Stdin)
	for {
		fmt.Printf("(maldbg pc=%d) ", dbg.PC())
		if !sc.Scan() {
			return
		}
		line := strings.TrimSpace(sc.Text())
		fields := strings.Fields(line)
		if len(fields) == 0 {
			continue
		}
		switch fields[0] {
		case "help", "h":
			fmt.Println("list | step (s) | continue (c) | break <pc> | breakmod <module> | clear | print <X_n> | result | quit")
		case "list", "l":
			fmt.Print(dbg.Listing())
		case "step", "s":
			in, err := dbg.Step()
			switch {
			case err != nil:
				fmt.Println("error:", err)
			case in == nil:
				fmt.Println("plan finished")
			default:
				fmt.Printf("executed [%d] %s\n", in.PC, in.Name)
			}
		case "continue", "c":
			stopped, err := dbg.Continue()
			switch {
			case err != nil:
				fmt.Println("error:", err)
			case stopped == nil:
				fmt.Println("plan finished")
			default:
				fmt.Printf("breakpoint at [%d] %s\n", stopped.PC, stopped.Name)
			}
		case "break", "b":
			if len(fields) != 2 {
				fmt.Println("usage: break <pc>")
				continue
			}
			pc, err := strconv.Atoi(fields[1])
			if err != nil {
				fmt.Println("bad pc:", fields[1])
				continue
			}
			if err := dbg.BreakAt(pc); err != nil {
				fmt.Println("error:", err)
			}
		case "breakmod":
			if len(fields) != 2 {
				fmt.Println("usage: breakmod <module>")
				continue
			}
			dbg.BreakModule(fields[1])
		case "clear":
			dbg.ClearBreakpoints()
		case "print", "p":
			if len(fields) != 2 {
				fmt.Println("usage: print <X_n>")
				continue
			}
			desc, err := dbg.Inspect(fields[1])
			if err != nil {
				fmt.Println("error:", err)
				continue
			}
			fmt.Println(desc)
		case "result", "r":
			ok, err := dbg.WriteResult(os.Stdout)
			if err != nil {
				fmt.Println("error:", err)
			} else if !ok {
				fmt.Println("plan not finished")
			}
		case "quit", "q", "exit":
			return
		default:
			fmt.Printf("unknown command %q (try help)\n", fields[0])
		}
	}
}
