// Command maldbg is the GDB-like MAL debugger (paper §2: "MonetDB
// provides a GDB-like MAL debugger for runtime inspection") — the
// textual tool Stethoscope improves on. It compiles a query and opens an
// interactive stepping session.
//
// Usage:
//
//	maldbg -q "select l_tax from lineitem where l_partkey=1" [-partitions 4]
//
// Commands: list | step (s) | continue (c) | break <pc> | breakmod <m> |
// print <X_n> | result | quit
package main

import (
	"bufio"
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"
	"strings"

	"stethoscope/internal/algebra"
	"stethoscope/internal/compiler"
	"stethoscope/internal/engine"
	"stethoscope/internal/server"
	"stethoscope/internal/sql"
	"stethoscope/internal/storage"
	"stethoscope/internal/tpch"
)

func main() {
	query := flag.String("q", "select l_tax from lineitem where l_partkey=1", "SQL query to debug")
	partitions := flag.Int("partitions", 1, "mitosis partitions")
	sf := flag.Float64("sf", 0.005, "TPC-H scale factor")
	flag.Parse()

	cat := storage.NewCatalog()
	if err := tpch.Load(cat, tpch.Config{SF: *sf, Seed: 42}); err != nil {
		log.Fatal(err)
	}
	stmt, err := sql.Parse(*query)
	if err != nil {
		log.Fatal(err)
	}
	tree, err := algebra.Bind(stmt, cat)
	if err != nil {
		log.Fatal(err)
	}
	plan, err := compiler.Compile(tree, stmt.Text, compiler.Options{Partitions: *partitions})
	if err != nil {
		log.Fatal(err)
	}
	eng := engine.New(cat)
	dbg, err := engine.NewDebugger(eng, plan, nil)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("mal debugger: %d instructions; 'list' to view, 'help' for commands\n", len(plan.Instrs))
	sc := bufio.NewScanner(os.Stdin)
	for {
		fmt.Printf("(maldbg pc=%d) ", dbg.PC())
		if !sc.Scan() {
			return
		}
		line := strings.TrimSpace(sc.Text())
		fields := strings.Fields(line)
		if len(fields) == 0 {
			continue
		}
		switch fields[0] {
		case "help", "h":
			fmt.Println("list | step (s) | continue (c) | break <pc> | breakmod <module> | clear | print <X_n> | result | quit")
		case "list", "l":
			fmt.Print(dbg.Listing())
		case "step", "s":
			in, ok, err := dbg.Step()
			switch {
			case err != nil:
				fmt.Println("error:", err)
			case !ok:
				fmt.Println("plan finished")
			default:
				fmt.Printf("executed [%d] %s\n", in.PC, in.Name())
			}
		case "continue", "c":
			stopped, err := dbg.Continue()
			switch {
			case err != nil:
				fmt.Println("error:", err)
			case stopped == nil:
				fmt.Println("plan finished")
			default:
				fmt.Printf("breakpoint at [%d] %s\n", stopped.PC, stopped.Name())
			}
		case "break", "b":
			if len(fields) != 2 {
				fmt.Println("usage: break <pc>")
				continue
			}
			pc, err := strconv.Atoi(fields[1])
			if err != nil {
				fmt.Println("bad pc:", fields[1])
				continue
			}
			if err := dbg.BreakAt(pc); err != nil {
				fmt.Println("error:", err)
			}
		case "breakmod":
			if len(fields) != 2 {
				fmt.Println("usage: breakmod <module>")
				continue
			}
			dbg.BreakModule(fields[1])
		case "clear":
			dbg.ClearBreakpoints()
		case "print", "p":
			if len(fields) != 2 {
				fmt.Println("usage: print <X_n>")
				continue
			}
			desc, err := dbg.InspectByName(fields[1])
			if err != nil {
				fmt.Println("error:", err)
				continue
			}
			fmt.Println(desc)
		case "result", "r":
			res := dbg.Result()
			if res == nil {
				fmt.Println("plan not finished")
				continue
			}
			w := bufio.NewWriter(os.Stdout)
			server.WriteResult(w, res)
			w.Flush()
		case "quit", "q", "exit":
			return
		default:
			fmt.Printf("unknown command %q (try help)\n", fields[0])
		}
	}
}
