// Package stethoscope is a from-scratch Go reproduction of
// "Stethoscope: A platform for interactive visual analysis of query
// execution plans" (Gawade & Kersten, PVLDB 2012).
//
// The paper's tool inspects MonetDB query execution: MAL plans rendered
// as dataflow DAGs, animated with profiler traces, online (UDP stream
// from the server) and offline (dot + trace files). This module rebuilds
// the entire stack in Go:
//
//   - internal/storage, internal/tpch — BAT columnar store and synthetic
//     TPC-H data (the substrate MonetDB provides in the original);
//   - internal/sql, internal/algebra, internal/compiler,
//     internal/optimizer — SQL → relational algebra → MAL lowering with
//     mitosis/mergetable partitioning and a MAL optimizer pipeline;
//   - internal/mal, internal/engine, internal/profiler — the MAL language,
//     a sequential + multi-core dataflow interpreter, and the per-
//     instruction start/done event profiler;
//   - internal/dot, internal/layout, internal/svg — the dot-file stage,
//     a layered layout engine (GraphViz substitute), and the intermediate
//     SVG representation;
//   - internal/zvtm — the ZVTM/ZGrviewer object model: glyphs, virtual
//     spaces, cameras, fisheye lenses, animations, and the EDT-style
//     render queue with the paper's 150 ms dispatch ceiling;
//   - internal/core — Stethoscope proper: pair-elision and threshold
//     coloring (§4.2.1), trace replay, birds-eye clustering, utilization
//     analysis, tooltips/debug data, and the online textual Stethoscope;
//   - internal/netproto, internal/server — the UDP event stream and the
//     Mserver TCP front-end;
//   - internal/ascii — the headless display window.
//
// The benchmarks in bench_test.go regenerate every figure and checkable
// claim of the paper; EXPERIMENTS.md records the results. See DESIGN.md
// for the full system inventory and the substitution notes.
package stethoscope
