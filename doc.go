// Package stethoscope is a from-scratch Go reproduction of
// "Stethoscope: A platform for interactive visual analysis of query
// execution plans" (Gawade & Kersten, PVLDB 2012) — and the public,
// composable facade over it.
//
// The paper's tool inspects MonetDB query execution: MAL plans rendered
// as dataflow DAGs, animated with profiler traces, online (UDP stream
// from the server) and offline (dot + trace files). This module rebuilds
// the entire stack in Go and exposes it as a library through this root
// package:
//
//	db, _ := stethoscope.Open(stethoscope.WithScaleFactor(0.01))
//	res, _ := db.Exec(ctx, "select l_tax from lineitem where l_partkey=1")
//	a, _ := stethoscope.Analyze(res)
//	fmt.Print(a.RenderGraph(stethoscope.DefaultRender()))
//
// The surface is small and composable:
//
//   - DB / Open / Exec / Stream — the server side in-process: a
//     synthetic TPC-H catalog and a profiled MAL interpreter. Exec takes
//     a context.Context that cancels the execution, and returns a Result
//     bundling the optimized MAL plan, the profiler trace, the result
//     table, and execution statistics. Stream returns a RowIter that
//     yields rows as the morsel pipeline produces them, before the run
//     completes.
//
// The execution knobs, each validated at its entry point and defaulted
// per query by ExecOption counterparts where one exists:
//
//	Open option           ExecOption        values        selects
//	--------------------  ----------------  ------------  ----------------------------------------
//	WithScaleFactor       —                 > 0           synthetic TPC-H scale factor
//	WithSeed              —                 any           data generator seed
//	WithPath              —                 dir           persisted dataset instead of generation
//	WithPartitions        ExecPartitions    ≥1 | Auto     static mitosis slice count
//	WithWorkers           ExecWorkers       ≥1 | Auto     dataflow scheduler workers
//	WithMorselRows        ExecMorselRows    ≥1 | Auto     morsel-driven lowering + rows per morsel
//	WithOptimizerPasses   —                 pass names    MAL optimizer pipeline
//	WithPlanCacheSize     —                 ≥0            compiled-plan cache capacity (0 disables)
//	WithResultCache       —                 n, ttl        shared result-reuse cache: completed outcomes
//	                                                      served to identical statements (0 disables;
//	                                                      default off; ttl 0 = no expiry)
//	WithHistory(Config)   —                 dir           durable query history
//	WithMetricsAddr       —                 host:port     HTTP observability endpoint (/metrics, /progress, /debug/pprof)
//
// Auto defers the choice to the adaptive tuner at execution time; the
// resolved values and the reason land in Result.Stats (Partitions,
// Workers, MorselRows, TuneReason). Out-of-range numeric values clamp
// to 1 through the shared rule in internal/adaptive; Open-time options
// reject invalid values outright.
//
// Concurrent identical statements share work instead of repeating it:
// non-streaming executions with the same SQL and settings single-flight
// — one caller runs the plan, concurrent duplicates attach to its
// in-flight run and receive the same outcome — and with WithResultCache
// a completed outcome is additionally served to later repeats until its
// TTL lapses or the dataset changes (DB.Persist invalidates). Shared
// results are byte-identical to a private execution; Result.Stats.Shared
// reports "attached" or "resultcache" when a call did not run the plan
// itself. Server sessions participate too and can opt out per
// connection with SET resultcache off (the single-flight dedup is
// always on).
//   - Analyze / OpenOffline → Analysis — Stethoscope proper: the
//     laid-out plan graph, execution-state coloring (pair-elision,
//     threshold, gradient), replay, costly-instruction / utilization /
//     birds-eye / Gantt / micro reports, SVG and terminal rendering.
//   - Attach → Monitor, Dial → Remote, DB.Serve → Server — the online
//     mode: a UDP monitor with a pluggable EventSink, the mserver TCP
//     front-end, and its client.
//   - DB.Debug → Debugger — the GDB-like MAL debugger the paper
//     improves upon.
//   - WithHistory(dir) / DB.History / OpenHistory → History — the
//     durable query history: every execution is recorded into an
//     append-only segmented trace store with retention and crash
//     recovery, then listed (Queries, TopN), replayed as a full
//     Analysis, and diffed across runs (Compare) — after restarts,
//     from other processes, or over TCP via the HISTORY command.
//   - DB.Metrics / DB.WriteMetrics / DB.Progress — the always-on
//     observability surface: a lock-free metrics registry spanning
//     every engine layer (snapshot or Prometheus text) and the live
//     per-query progress table, also served over TCP (METRICS,
//     PROGRESS) and, with WithMetricsAddr, over HTTP alongside pprof.
//
// Everything else lives under internal/; see DESIGN.md for the full
// system inventory and the MonetDB-substitution notes. The experiment
// harness regenerating the paper's figures and claims is bench_test.go.
// The engine's cross-cutting invariants (kernel coverage, cancellation,
// store error naming, the atomics policy, no sends under locks) are
// enforced at lint time by cmd/stethovet — see internal/analyzers.
package stethoscope
