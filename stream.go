package stethoscope

import (
	"context"
	"errors"
	"fmt"
	"iter"

	"stethoscope/internal/engine"
	"stethoscope/internal/mal"
	"stethoscope/internal/sql"
	"stethoscope/internal/storage"
)

// Stream compiles and executes one SQL query, yielding result rows as
// the engine produces them instead of materializing the table first.
// Under the morsel-driven lowering a streamable plan (no sort, no
// final aggregate recombination) hands each completed morsel's rows to
// the iterator while later morsels are still executing, so the first
// rows arrive before the scan finishes and the peak resident set stays
// bounded by workers × morsel rows. Plans that must materialize (sorts,
// grouped aggregates) still stream — as one batch when their combine
// stage completes — so every query works through the same iterator.
//
// Stream forces morsel mode: without an ExecMorselRows override (and
// with no WithMorselRows DB default) the morsel size is chosen
// adaptively, as if ExecMorselRows(Auto) were given. Cancel ctx to
// abandon the query early; Close releases the run either way.
// Streaming runs are not recorded into the query history — the history
// measures materialized executions (Exec) so its wall times stay
// comparable.
//
// The returned iterator is not safe for concurrent use.
func (db *DB) Stream(ctx context.Context, query string, opts ...ExecOption) (*RowIter, error) {
	ec := db.execConfig(opts)
	if !ec.morselOn {
		ec.morsel, ec.morselOn = Auto, true
	}
	comp, err := db.compile(query, ec.partitions, true)
	if err != nil {
		return nil, err
	}
	plan := comp.Plan
	workers, _, _ := comp.ResolveExec(ec.workers)
	morselRows, _, _ := comp.ResolveMorsel(ec.morsel)
	sctx, cancel := context.WithCancel(ctx)
	it := &RowIter{
		names:  resultColumnNames(plan),
		ch:     make(chan []*storage.BAT),
		errc:   make(chan error, 1),
		cancel: cancel,
		idx:    -1,
	}
	db.inflight.Add(1)
	go func() {
		defer db.inflight.Add(-1)
		_, err := db.eng.RunContext(sctx, plan, engine.Options{
			Workers:    workers,
			MorselRows: morselRows,
			Label:      query,
			Emit: func(names []string, cols []*storage.BAT) error {
				// An unbuffered send per batch: the engine's producers
				// wait for the consumer, which is the backpressure that
				// keeps in-flight batches bounded.
				select {
				case it.ch <- cols:
					return nil
				case <-sctx.Done():
					return sctx.Err()
				}
			},
		})
		if err == nil {
			db.execs.Add(1)
		}
		it.errc <- err
		close(it.ch)
	}()
	return it, nil
}

// resultColumnNames reads the result column names off the compiled
// plan's sql.rsColumn instructions — available before the first row.
func resultColumnNames(plan *mal.Plan) []string {
	var names []string
	for _, in := range plan.Instrs {
		if in.Module == "sql" && in.Function == "rsColumn" && len(in.Args) >= 3 && in.Args[1].IsConst() {
			names = append(names, in.Args[1].Const.Str)
		}
	}
	return names
}

// RowIter iterates a streaming query's result rows in order. The usual
// loop mirrors database/sql:
//
//	it, err := db.Stream(ctx, q)
//	...
//	defer it.Close()
//	for it.Next() {
//	    var key int64
//	    if err := it.Scan(&key); err != nil { ... }
//	}
//	if err := it.Err(); err != nil { ... }
//
// or, range-over-func style, for row := range it.All() { ... }.
type RowIter struct {
	names  []string
	ch     chan []*storage.BAT
	errc   chan error
	cancel context.CancelFunc

	cur  []*storage.BAT // current batch
	idx  int            // row index into cur
	done bool
	err  error
}

// Columns returns the result column names, available immediately.
func (it *RowIter) Columns() []string { return append([]string(nil), it.names...) }

// Next advances to the next row, blocking until one is available. It
// returns false when the rows are exhausted or the run failed; Err
// distinguishes the two.
func (it *RowIter) Next() bool {
	if it.done {
		return false
	}
	it.idx++
	for it.cur == nil || len(it.cur) == 0 || it.idx >= it.cur[0].Len() {
		batch, ok := <-it.ch
		if !ok {
			it.finish(<-it.errc)
			return false
		}
		it.cur, it.idx = batch, 0
	}
	return true
}

// finish latches the terminal state once the producer goroutine is done.
func (it *RowIter) finish(err error) {
	it.done = true
	it.cur = nil
	if it.err == nil {
		it.err = err
	}
}

// Scan copies the current row into dest, one pointer per column:
// *int64 or *int (integer and date columns), *float64, *string (string
// columns, and date columns formatted YYYY-MM-DD), *bool, or *any
// (the column's native Go value; dates format as strings).
func (it *RowIter) Scan(dest ...any) error {
	if it.cur == nil {
		return errors.New("stethoscope: Scan called without a row (call Next first)")
	}
	if len(dest) != len(it.cur) {
		return fmt.Errorf("stethoscope: Scan got %d destinations for %d columns", len(dest), len(it.cur))
	}
	for c, b := range it.cur {
		if err := scanCell(dest[c], b, it.idx); err != nil {
			return fmt.Errorf("stethoscope: column %d: %w", c, err)
		}
	}
	return nil
}

// scanCell converts one cell into the destination pointer.
func scanCell(dst any, b *storage.BAT, i int) error {
	switch d := dst.(type) {
	case *int64:
		switch b.Kind() {
		case storage.Int, storage.OID, storage.Date:
			*d = b.IntAt(i)
			return nil
		}
	case *int:
		switch b.Kind() {
		case storage.Int, storage.OID, storage.Date:
			*d = int(b.IntAt(i))
			return nil
		}
	case *float64:
		if b.Kind() == storage.Flt {
			*d = b.FltAt(i)
			return nil
		}
	case *string:
		switch b.Kind() {
		case storage.Str:
			*d = b.StrAt(i)
			return nil
		case storage.Date:
			*d = sql.FormatDate(b.IntAt(i))
			return nil
		}
	case *bool:
		if b.Kind() == storage.Bool {
			*d = b.BoolAt(i)
			return nil
		}
	case *any:
		switch b.Kind() {
		case storage.Flt:
			*d = b.FltAt(i)
		case storage.Str:
			*d = b.StrAt(i)
		case storage.Bool:
			*d = b.BoolAt(i)
		case storage.Date:
			*d = sql.FormatDate(b.IntAt(i))
		default:
			*d = b.IntAt(i)
		}
		return nil
	default:
		return fmt.Errorf("unsupported destination type %T", dst)
	}
	return fmt.Errorf("cannot scan %v column into %T", b.Kind(), dst)
}

// Err returns the error that terminated iteration, nil after a clean
// exhaustion or before termination.
func (it *RowIter) Err() error { return it.err }

// Close abandons the query (if still running) and releases the run. It
// is safe to call at any point and more than once; a cancellation Close
// itself provoked is not reported as an error.
func (it *RowIter) Close() error {
	it.cancel()
	if !it.done {
		for range it.ch {
			// Drain so the producer's pending send never leaks the
			// goroutine; the canceled run ends within a morsel.
		}
		err := <-it.errc
		if errors.Is(err, context.Canceled) {
			err = nil
		}
		it.finish(err)
	}
	return it.err
}

// All returns a range-over-func iterator over the remaining rows, each
// as a []any of native cell values (dates formatted YYYY-MM-DD). The
// underlying run is closed when the loop ends, even on early break;
// check Err afterwards.
func (it *RowIter) All() iter.Seq[[]any] {
	return func(yield func([]any) bool) {
		defer it.Close()
		for it.Next() {
			row := make([]any, len(it.cur))
			for c := range row {
				if err := scanCell(&row[c], it.cur[c], it.idx); err != nil {
					it.err = err
					return
				}
			}
			if !yield(row) {
				return
			}
		}
	}
}
