package stethoscope

import (
	"context"
	"fmt"
	"io"
	"strconv"
	"strings"
	"time"

	"stethoscope/internal/algebra"
	"stethoscope/internal/compiler"
	"stethoscope/internal/engine"
	"stethoscope/internal/mal"
	"stethoscope/internal/optimizer"
	"stethoscope/internal/profiler"
	"stethoscope/internal/sql"
	"stethoscope/internal/storage"
	"stethoscope/internal/tpch"
	"stethoscope/internal/trace"
)

// config collects the Open-time settings.
type config struct {
	sf         float64
	seed       uint64
	partitions int
	workers    int
	passes     []string // nil selects the default optimizer pipeline
}

// Option configures Open.
type Option func(*config)

// WithScaleFactor sets the synthetic TPC-H scale factor (default 0.01).
func WithScaleFactor(sf float64) Option { return func(c *config) { c.sf = sf } }

// WithSeed sets the data generator seed (default 42), making the
// database contents reproducible.
func WithSeed(seed uint64) Option { return func(c *config) { c.seed = seed } }

// WithPartitions sets the default mitosis partition count queries are
// compiled with (default 1 — no partitioning). ExecPartitions overrides
// it per query.
func WithPartitions(n int) Option { return func(c *config) { c.partitions = n } }

// WithWorkers sets the default dataflow worker count queries execute
// with (default 1 — sequential interpretation). ExecWorkers overrides it
// per query.
func WithWorkers(n int) Option { return func(c *config) { c.workers = n } }

// WithOptimizerPasses selects the MAL optimizer pipeline by pass name,
// in order. Known passes: "cse", "deadcode". An explicit empty list
// disables optimization; omitting the option selects the default
// pipeline (cse, deadcode).
func WithOptimizerPasses(names ...string) Option {
	return func(c *config) {
		if names == nil {
			names = []string{}
		}
		c.passes = names
	}
}

// buildPipeline resolves pass names into an optimizer pipeline.
func buildPipeline(names []string) (optimizer.Pipeline, error) {
	if names == nil {
		return optimizer.Default(), nil
	}
	var pl optimizer.Pipeline
	for _, n := range names {
		switch strings.ToLower(n) {
		case "cse":
			pl.Passes = append(pl.Passes, optimizer.CSE{})
		case "deadcode":
			pl.Passes = append(pl.Passes, optimizer.DeadCode{})
		default:
			return pl, fmt.Errorf("stethoscope: unknown optimizer pass %q (have cse, deadcode)", n)
		}
	}
	return pl, nil
}

// DB is an in-process instance of the paper's whole server side: a BAT
// catalog loaded with synthetic TPC-H data, the SQL → algebra → MAL
// compiler, the optimizer pipeline, and the profiled MAL interpreter.
// One DB serves many concurrent Exec calls.
type DB struct {
	cfg      config
	pipeline optimizer.Pipeline
	cat      *storage.Catalog
	eng      *engine.Engine
}

// Open generates the data substrate and returns a ready database.
func Open(opts ...Option) (*DB, error) {
	cfg := config{sf: 0.01, seed: 42, partitions: 1, workers: 1}
	for _, o := range opts {
		o(&cfg)
	}
	if cfg.sf <= 0 {
		return nil, fmt.Errorf("stethoscope: scale factor must be positive, got %g", cfg.sf)
	}
	if cfg.partitions < 1 || cfg.workers < 1 {
		return nil, fmt.Errorf("stethoscope: partitions and workers must be >= 1")
	}
	pl, err := buildPipeline(cfg.passes)
	if err != nil {
		return nil, err
	}
	cat := storage.NewCatalog()
	if err := tpch.Load(cat, tpch.Config{SF: cfg.sf, Seed: cfg.seed}); err != nil {
		return nil, fmt.Errorf("stethoscope: %w", err)
	}
	return &DB{cfg: cfg, pipeline: pl, cat: cat, eng: engine.New(cat)}, nil
}

// Close releases the database. It exists for symmetry and future
// resource ownership; the current implementation is purely in-memory.
func (db *DB) Close() error { return nil }

// TableInfo describes one catalog table.
type TableInfo struct {
	Name string // qualified name, e.g. "sys.lineitem"
	Rows int
}

// Tables lists the catalog tables with their row counts.
func (db *DB) Tables() []TableInfo {
	names := db.cat.TableNames()
	out := make([]TableInfo, 0, len(names))
	for _, n := range names {
		rows := 0
		schema, bare := splitQualified(n)
		if t, ok := db.cat.Table(schema, bare); ok {
			rows = t.Rows()
		}
		out = append(out, TableInfo{Name: n, Rows: rows})
	}
	return out
}

// splitQualified resolves a table name into schema and bare name; names
// without a schema prefix default to sys.
func splitQualified(name string) (schema, bare string) {
	if i := strings.IndexByte(name, '.'); i >= 0 {
		return name[:i], name[i+1:]
	}
	return "sys", name
}

// execConfig is the per-call override of the DB execution defaults.
type execConfig struct {
	partitions int
	workers    int
}

// ExecOption overrides execution settings for a single Exec / Explain /
// Debug call.
type ExecOption func(*execConfig)

// ExecPartitions compiles this query with n mitosis partitions.
func ExecPartitions(n int) ExecOption { return func(c *execConfig) { c.partitions = n } }

// ExecWorkers executes this query on n dataflow workers.
func ExecWorkers(n int) ExecOption { return func(c *execConfig) { c.workers = n } }

func (db *DB) execConfig(opts []ExecOption) execConfig {
	ec := execConfig{partitions: db.cfg.partitions, workers: db.cfg.workers}
	for _, o := range opts {
		o(&ec)
	}
	return ec
}

// compile lowers SQL to an optimized MAL plan under the DB's pipeline.
func (db *DB) compile(query string, partitions int) (*mal.Plan, OptimizerStats, error) {
	var stats OptimizerStats
	stmt, err := sql.Parse(query)
	if err != nil {
		return nil, stats, fmt.Errorf("stethoscope: parse: %w", err)
	}
	tree, err := algebra.Bind(stmt, db.cat)
	if err != nil {
		return nil, stats, fmt.Errorf("stethoscope: bind: %w", err)
	}
	plan, err := compiler.Compile(tree, stmt.Text, compiler.Options{Partitions: partitions})
	if err != nil {
		return nil, stats, fmt.Errorf("stethoscope: compile: %w", err)
	}
	plan, stats, err = db.pipeline.Run(plan)
	if err != nil {
		return nil, stats, fmt.Errorf("stethoscope: optimize: %w", err)
	}
	return plan, stats, nil
}

// Exec compiles, optimizes, and executes one SQL query under the
// profiler. The returned Result bundles the optimized MAL plan, the full
// execution trace, the result table, and execution statistics. The
// context cancels the execution: sequential runs stop between
// instructions, dataflow runs stop dispatching work.
func (db *DB) Exec(ctx context.Context, query string, opts ...ExecOption) (*Result, error) {
	ec := db.execConfig(opts)
	plan, ostats, err := db.compile(query, ec.partitions)
	if err != nil {
		return nil, err
	}
	sink := &profiler.SliceSink{}
	start := time.Now()
	res, err := db.eng.RunContext(ctx, plan, engine.Options{
		Workers:  ec.workers,
		Profiler: profiler.New(sink),
	})
	if err != nil {
		return nil, err
	}
	events := sink.Events()
	return &Result{
		traceView: traceView{store: trace.FromEvents(events)},
		Query:     query,
		Stats: Stats{
			Optimizer:    ostats,
			Elapsed:      time.Since(start),
			Instructions: len(plan.Instrs),
			Partitions:   ec.partitions,
			Workers:      ec.workers,
		},
		plan: plan,
		res:  res,
	}, nil
}

// Explain compiles and optimizes the query without executing it and
// returns the MAL listing.
func (db *DB) Explain(query string, opts ...ExecOption) (string, error) {
	ec := db.execConfig(opts)
	plan, _, err := db.compile(query, ec.partitions)
	if err != nil {
		return "", err
	}
	return plan.String(), nil
}

// DumpCSV writes a catalog table as CSV with a header line. table is a
// bare name ("lineitem", resolved in the sys schema) or a qualified one
// ("sys.lineitem"). limit bounds the row count (0 dumps everything).
func (db *DB) DumpCSV(w io.Writer, table string, limit int) error {
	schema, name := splitQualified(table)
	t, ok := db.cat.Table(schema, name)
	if !ok {
		names := make([]string, 0)
		for _, ti := range db.Tables() {
			names = append(names, ti.Name)
		}
		return fmt.Errorf("stethoscope: unknown table %q; have %s", table, strings.Join(names, ", "))
	}
	names := make([]string, len(t.Columns))
	bats := make([]*storage.BAT, len(t.Columns))
	for i, c := range t.Columns {
		names[i] = c.Name
		bats[i], _ = t.Column(c.Name)
	}
	if _, err := fmt.Fprintln(w, strings.Join(names, ",")); err != nil {
		return err
	}
	rows := t.Rows()
	if limit > 0 && limit < rows {
		rows = limit
	}
	var b strings.Builder
	for i := 0; i < rows; i++ {
		b.Reset()
		for c, col := range t.Columns {
			if c > 0 {
				b.WriteByte(',')
			}
			bat := bats[c]
			switch col.Kind {
			case storage.Flt:
				b.WriteString(strconv.FormatFloat(bat.FltAt(i), 'g', -1, 64))
			case storage.Str:
				b.WriteString(bat.StrAt(i))
			case storage.Date:
				b.WriteString(sql.FormatDate(bat.IntAt(i)))
			default:
				b.WriteString(strconv.FormatInt(bat.IntAt(i), 10))
			}
		}
		b.WriteByte('\n')
		if _, err := io.WriteString(w, b.String()); err != nil {
			return err
		}
	}
	return nil
}
