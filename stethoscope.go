package stethoscope

import (
	"context"
	"errors"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
	"time"

	"stethoscope/internal/adaptive"
	"stethoscope/internal/batstore"
	"stethoscope/internal/engine"
	"stethoscope/internal/metrics"
	"stethoscope/internal/optimizer"
	"stethoscope/internal/plancache"
	"stethoscope/internal/planner"
	"stethoscope/internal/profiler"
	"stethoscope/internal/sharedwork"
	"stethoscope/internal/sql"
	"stethoscope/internal/storage"
	"stethoscope/internal/tpch"
	"stethoscope/internal/tracestore"
)

// DefaultPlanCacheSize is the compiled-plan cache capacity Open uses
// unless WithPlanCacheSize overrides it.
const DefaultPlanCacheSize = plancache.DefaultSize

// Auto requests adaptive selection wherever a partition or worker count
// is configured (WithPartitions, WithWorkers, ExecPartitions,
// ExecWorkers, the server's SET command): the mitosis fan-out is chosen
// per query from the scanned tables' row counts and the machine's core
// count, and the dataflow worker count from the resolved fan-out. The
// choice and its reason are recorded in Result.Stats
// (Partitions/Workers/TuneReason) and in the query history's RunMeta.
const Auto = adaptive.Auto

// config collects the Open-time settings.
type config struct {
	sf          float64
	seed        uint64
	sfSet       bool   // WithScaleFactor was given explicitly
	seedSet     bool   // WithSeed was given explicitly
	dataDir     string // non-empty: open a persisted dataset instead of generating
	partitions  int
	workers     int
	morselRows  int            // morsel size when morsel mode is the DB default
	morselSet   bool           // WithMorselRows was given: morsel mode is the DB default
	passes      []string       // nil selects the default optimizer pipeline
	cacheSize   int            // compiled-plan cache capacity; 0 disables
	history     *HistoryConfig // nil disables the durable query history
	metricsAddr string         // non-empty: serve /metrics + pprof here
	resultCache int            // result-cache capacity; 0 (default) disables
	resultTTL   time.Duration  // result-cache entry lifetime; <= 0 never expires
}

// Option configures Open.
type Option func(*config)

// WithScaleFactor sets the synthetic TPC-H scale factor (default 0.01).
func WithScaleFactor(sf float64) Option {
	return func(c *config) { c.sf, c.sfSet = sf, true }
}

// WithSeed sets the data generator seed (default 42), making the
// database contents reproducible.
func WithSeed(seed uint64) Option {
	return func(c *config) { c.seed, c.seedSet = seed, true }
}

// WithPath opens the database from a persisted dataset directory
// (written by DB.Persist or tpchgen -persist) instead of generating
// TPC-H data: the catalog's schemas and row counts load from the
// dataset manifest, and column data streams off disk lazily as queries
// first scan it. The dataset fixes the data contents, so combining
// WithPath with WithScaleFactor or WithSeed is an error.
func WithPath(dir string) Option { return func(c *config) { c.dataDir = dir } }

// ValidateScaleFactor checks a TPC-H scale factor the way Open does: it
// must be a positive finite number. Shared with cmd/tpchgen so the CLI
// rejects out-of-range flags with the same rule instead of silently
// generating from garbage.
func ValidateScaleFactor(sf float64) error {
	if math.IsNaN(sf) || math.IsInf(sf, 0) || sf <= 0 {
		return fmt.Errorf("stethoscope: scale factor must be a positive finite number, got %g", sf)
	}
	return nil
}

// WithPartitions sets the default mitosis partition count queries are
// compiled with (default 1 — no partitioning). Pass Auto to size the
// fan-out per query from catalog row counts and the core count.
// ExecPartitions overrides it per query.
func WithPartitions(n int) Option { return func(c *config) { c.partitions = n } }

// WithWorkers sets the default dataflow worker count queries execute
// with (default 1 — sequential interpretation). Pass Auto to derive the
// worker count from the resolved partition fan-out and the core count.
// ExecWorkers overrides it per query.
func WithWorkers(n int) Option { return func(c *config) { c.workers = n } }

// WithMorselRows makes morsel-driven execution the DB default: queries
// compile into pipeline fragments whose workers pull n-row morsels from
// a shared cursor, bounding peak intermediate memory to roughly
// workers × n rows instead of partitions × slice. Pass Auto to size the
// morsel per query from the driver table's row count and the core
// count. ExecMorselRows overrides it per query. The default (option
// omitted) is the static mitosis lowering.
func WithMorselRows(n int) Option {
	return func(c *config) { c.morselRows, c.morselSet = n, true }
}

// WithOptimizerPasses selects the MAL optimizer pipeline by pass name,
// in order. Known passes: "cse", "matfold", "deadcode". An explicit
// empty list disables optimization; omitting the option selects the
// default pipeline (cse, matfold, deadcode).
func WithOptimizerPasses(names ...string) Option {
	return func(c *config) {
		if names == nil {
			names = []string{}
		}
		c.passes = names
	}
}

// WithPlanCacheSize sets the capacity of the shared compiled-plan cache
// (default DefaultPlanCacheSize). Repeated statements hit the cache and
// skip parse → bind → compile → optimize entirely; the cache is shared
// by every Exec/Explain caller and every server session of this DB.
// n = 0 disables caching (every statement compiles from scratch).
func WithPlanCacheSize(n int) Option {
	return func(c *config) {
		if n < 0 {
			n = 0
		}
		c.cacheSize = n
	}
}

// WithResultCache enables the shared result cache: up to n completed
// query outcomes are retained for ttl and served — byte-identical, with
// Result.Stats.Shared = "resultcache" — to repeated identical
// statements without re-executing. The cache is keyed like the shared
// execution flight (SQL text, partitions, morsel geometry, optimizer
// passes) and shared by every Exec caller and server session of this
// DB; it is invalidated whenever the dataset can change (DB.Persist).
// ttl <= 0 means entries never expire by time. The default (option
// omitted, or n <= 0) is no result caching: only concurrent identical
// statements share work, via the always-on single-flight.
func WithResultCache(n int, ttl time.Duration) Option {
	return func(c *config) {
		if n < 0 {
			n = 0
		}
		c.resultCache, c.resultTTL = n, ttl
	}
}

// WithMetricsAddr serves the observability HTTP endpoint on addr
// ("127.0.0.1:0" picks a free port; see DB.MetricsAddr for the bound
// address): /metrics in Prometheus text format, /progress as a JSON
// array of in-flight queries, and the standard net/http/pprof profiling
// handlers under /debug/pprof/. The endpoint is read-only and shares
// the DB's metrics registry; omitting the option (the default) binds
// nothing.
func WithMetricsAddr(addr string) Option {
	return func(c *config) { c.metricsAddr = addr }
}

// buildPipeline resolves pass names into an optimizer pipeline.
func buildPipeline(names []string) (optimizer.Pipeline, error) {
	if names == nil {
		return optimizer.Default(), nil
	}
	var pl optimizer.Pipeline
	for _, n := range names {
		switch strings.ToLower(n) {
		case "cse":
			pl.Passes = append(pl.Passes, optimizer.CSE{})
		case "matfold":
			pl.Passes = append(pl.Passes, optimizer.MatFold{})
		case "deadcode":
			pl.Passes = append(pl.Passes, optimizer.DeadCode{})
		default:
			return pl, fmt.Errorf("stethoscope: unknown optimizer pass %q (have cse, matfold, deadcode)", n)
		}
	}
	return pl, nil
}

// DB is an in-process instance of the paper's whole server side: a BAT
// catalog loaded with synthetic TPC-H data, the SQL → algebra → MAL
// compiler, the optimizer pipeline, the shared compiled-plan cache, and
// the profiled MAL interpreter. One DB serves many concurrent Exec
// calls: the engine is reentrant, compiled plans are shared read-only,
// and DB.Stats reports the serving counters.
type DB struct {
	cfg      config
	pipeline optimizer.Pipeline
	passSpec string
	cat      *storage.Catalog
	eng      *engine.Engine
	cache    *plancache.Cache // nil when caching is disabled
	planner  planner.Planner  // the shared compile flow over cat/cache/pipeline
	shared   *sharedwork.Shared
	hist     *History          // nil when query history is disabled
	dataMeta map[string]string // provenance recorded into persisted datasets

	opened   time.Time
	inflight *metrics.Gauge   // stetho_db_inflight: live Exec/Stream calls
	execs    *metrics.Counter // stetho_db_execs: completed executions
	events   *metrics.Counter // stetho_db_events: profiler events produced

	// Observability: the DB-wide metrics registry every subsystem feeds
	// (engine scheduler, plancache, batstore, tracestore, profiler,
	// servers), the sliding-window event rate behind
	// DBStats.EventsPerSec, and the query latency histogram. reg is
	// always non-nil after Open; msrv is the optional HTTP endpoint.
	reg     *metrics.Registry
	rate    *metrics.Rate
	latency *metrics.Histogram
	msrv    *metricsServer
}

// Open generates the data substrate and returns a ready database.
func Open(opts ...Option) (*DB, error) {
	cfg := config{sf: 0.01, seed: 42, partitions: 1, workers: 1, cacheSize: DefaultPlanCacheSize}
	for _, o := range opts {
		o(&cfg)
	}
	if cfg.dataDir != "" && (cfg.sfSet || cfg.seedSet) {
		return nil, fmt.Errorf("stethoscope: WithPath opens a persisted dataset whose contents are fixed; WithScaleFactor/WithSeed cannot apply (regenerate with tpchgen -persist to change them)")
	}
	if err := ValidateScaleFactor(cfg.sf); err != nil {
		return nil, err
	}
	if (cfg.partitions < 1 && cfg.partitions != Auto) || (cfg.workers < 1 && cfg.workers != Auto) {
		return nil, fmt.Errorf("stethoscope: partitions and workers must be >= 1 (or Auto)")
	}
	if cfg.morselSet && cfg.morselRows < 1 && cfg.morselRows != Auto {
		return nil, fmt.Errorf("stethoscope: morsel rows must be >= 1 (or Auto)")
	}
	pl, err := buildPipeline(cfg.passes)
	if err != nil {
		return nil, err
	}
	reg := metrics.NewRegistry()
	var (
		cat  *storage.Catalog
		meta map[string]string
	)
	if cfg.dataDir != "" {
		store, err := batstore.Open(cfg.dataDir)
		if err != nil {
			return nil, fmt.Errorf("stethoscope: %w", err)
		}
		store.Instrument(reg)
		cat, err = store.Catalog()
		if err != nil {
			return nil, fmt.Errorf("stethoscope: %w", err)
		}
		meta = store.Meta()
	} else {
		cat = storage.NewCatalog()
		if err := tpch.Load(cat, tpch.Config{SF: cfg.sf, Seed: cfg.seed}); err != nil {
			return nil, fmt.Errorf("stethoscope: %w", err)
		}
		meta = map[string]string{
			"source": "tpchgen",
			"sf":     strconv.FormatFloat(cfg.sf, 'g', -1, 64),
			"seed":   strconv.FormatUint(cfg.seed, 10),
		}
	}
	db := &DB{
		cfg:      cfg,
		pipeline: pl,
		passSpec: pl.Spec(),
		cat:      cat,
		eng:      engine.New(cat),
		dataMeta: meta,
		opened:   time.Now(),
		reg:      reg,
		rate:     metrics.NewRate(0),
		latency:  reg.Histogram("stetho_query_latency_us", nil),
		inflight: reg.Gauge("stetho_db_inflight"),
		execs:    reg.Counter("stetho_db_execs"),
		events:   reg.Counter("stetho_db_events"),
	}
	db.eng.SetMetrics(reg)
	if cfg.cacheSize > 0 {
		db.cache = plancache.New(cfg.cacheSize)
		db.cache.Instrument(reg)
	}
	db.planner = planner.Planner{Cat: cat, Cache: db.cache, Pipeline: pl,
		PassSpec: db.passSpec, Flight: planner.NewCompileFlight()}
	db.shared = &sharedwork.Shared{Flight: sharedwork.NewFlight()}
	if cfg.resultCache > 0 {
		db.shared.Cache = sharedwork.NewResultCache(cfg.resultCache, cfg.resultTTL)
	}
	db.shared.Instrument(reg)
	reg.GaugeFunc("stetho_sharedwork_inflight", func() int64 {
		return int64(db.shared.Flight.InFlight())
	})
	if cfg.history != nil {
		hist, err := OpenHistoryConfig(*cfg.history)
		if err != nil {
			return nil, err
		}
		db.hist = hist
		hist.st.Instrument(reg)
	}
	if cfg.metricsAddr != "" {
		msrv, err := startMetricsServer(db, cfg.metricsAddr)
		if err != nil {
			db.Close()
			return nil, err
		}
		db.msrv = msrv
	}
	return db, nil
}

// OpenPath opens a database from a persisted dataset directory written
// by DB.Persist or tpchgen -persist. The catalog comes from the
// dataset's manifest — nothing is regenerated — and column data streams
// off disk lazily, one segment at a time, as queries first touch each
// column. All other options (partitions, workers, passes, cache,
// history) apply exactly as with Open.
func OpenPath(dir string, opts ...Option) (*DB, error) {
	return Open(append([]Option{WithPath(dir)}, opts...)...)
}

// Persist snapshots the database's full catalog into dir as a durable
// columnar dataset: a manifest plus one segmented, checksummed,
// compressed file per column. The directory can then be reopened with
// OpenPath (or mserver -data, or queried offline) without regenerating
// TPC-H data. Persist takes the writer lock on dir and replaces any
// dataset already there; the manifest is committed last, atomically, so
// an interrupted Persist never leaves an openable half-dataset.
func (db *DB) Persist(dir string) error {
	if err := batstore.Persist(dir, db.cat, db.dataMeta, 0); err != nil {
		return fmt.Errorf("stethoscope: %w", err)
	}
	// The dataset boundary is the result cache's invalidation point: a
	// persisted directory may be swapped under a future OpenPath, so
	// outcomes cached before the snapshot must not outlive it.
	db.shared.Cache.Purge()
	return nil
}

// DataMeta reports the provenance of the loaded dataset: generator
// scale factor and seed for generated databases, the persisted
// manifest's metadata for OpenPath databases.
func (db *DB) DataMeta() map[string]string {
	out := make(map[string]string, len(db.dataMeta))
	for k, v := range db.dataMeta {
		out[k] = v
	}
	return out
}

// Close releases the database: the metrics HTTP endpoint (when one was
// configured) stops listening, and with history enabled the trace store
// is sealed (flush + fsync) and its background compactor stopped.
func (db *DB) Close() error {
	if db.msrv != nil {
		db.msrv.close()
		db.msrv = nil
	}
	if db.hist != nil {
		return db.hist.Close()
	}
	return nil
}

// History returns the durable query-history handle, or nil when the DB
// was opened without WithHistory.
func (db *DB) History() *History { return db.hist }

// TableInfo describes one catalog table.
type TableInfo struct {
	Name string // qualified name, e.g. "sys.lineitem"
	Rows int
}

// Tables lists the catalog tables with their row counts.
func (db *DB) Tables() []TableInfo {
	names := db.cat.TableNames()
	out := make([]TableInfo, 0, len(names))
	for _, n := range names {
		rows := 0
		schema, bare := splitQualified(n)
		if t, ok := db.cat.Table(schema, bare); ok {
			rows = t.Rows()
		}
		out = append(out, TableInfo{Name: n, Rows: rows})
	}
	return out
}

// splitQualified resolves a table name into schema and bare name; names
// without a schema prefix default to sys.
func splitQualified(name string) (schema, bare string) {
	if i := strings.IndexByte(name, '.'); i >= 0 {
		return name[:i], name[i+1:]
	}
	return "sys", name
}

// execConfig is the per-call override of the DB execution defaults.
type execConfig struct {
	partitions int
	workers    int
	morsel     int  // morsel rows (or Auto) when morselOn
	morselOn   bool // compile the morsel-driven lowering
}

// ExecOption overrides execution settings for a single Exec / Explain /
// Debug call.
type ExecOption func(*execConfig)

// ExecPartitions compiles this query with n mitosis partitions. Pass
// Auto to size the fan-out from the scanned tables and the core count.
func ExecPartitions(n int) ExecOption { return func(c *execConfig) { c.partitions = n } }

// ExecWorkers executes this query on n dataflow workers. Pass Auto to
// derive the worker count from the partition fan-out and the core
// count.
func ExecWorkers(n int) ExecOption { return func(c *execConfig) { c.workers = n } }

// ExecMorselRows compiles this query with the morsel-driven lowering
// and executes it with n-row morsels: workers pull morsels from a
// shared cursor and run the whole pipeline fragment per morsel, so peak
// intermediate memory is bounded by workers × n rows. Pass Auto to size
// the morsel from the driver table's rows and the core count. The
// morsel size normalizes like every other exec setting (values below 1
// clamp to 1) and is a runtime option: changing it never recompiles or
// adds plan-cache entries.
func ExecMorselRows(n int) ExecOption {
	return func(c *execConfig) { c.morsel, c.morselOn = n, true }
}

// execConfig resolves the per-call overrides and normalizes them: Auto
// survives as the sentinel, anything below 1 clamps to 1. Every entry
// point (Exec, Explain, Debug — and, via the same adaptive.Normalize
// rule, the server's SET command) shares this normalization, and it
// runs before plan-cache keys are built or metadata recorded:
// ExecPartitions(0) used to compile the partitions=1 plan into a second
// cache entry under Key{Partitions:0} and write the bogus 0 into the
// history RunMeta.
func (db *DB) execConfig(opts []ExecOption) execConfig {
	ec := execConfig{
		partitions: db.cfg.partitions,
		workers:    db.cfg.workers,
		morsel:     db.cfg.morselRows,
		morselOn:   db.cfg.morselSet,
	}
	for _, o := range opts {
		o(&ec)
	}
	ec.partitions = adaptive.Normalize(ec.partitions)
	ec.workers = adaptive.Normalize(ec.workers)
	if ec.morselOn {
		ec.morsel = adaptive.Normalize(ec.morsel)
	}
	return ec
}

// morselRequest is the morsel setting handed to the shared planner
// resolution (Compiled.ResolveMorsel): 0 = morsel mode off.
func (ec execConfig) morselRequest() int {
	if !ec.morselOn {
		return 0
	}
	return ec.morsel
}

// compile lowers SQL to an optimized MAL plan through the shared
// planner flow (internal/planner — the same flow every server session
// compiles through). partitions must be normalized (execConfig does
// this); the Auto sentinel keys the plan cache directly and is resolved
// after bind, with the resolution memoized in the entry.
func (db *DB) compile(query string, partitions int, morsel bool) (planner.Compiled, error) {
	comp, err := db.planner.Compile(query, partitions, morsel)
	if err != nil {
		return planner.Compiled{}, fmt.Errorf("stethoscope: %w", err)
	}
	return comp, nil
}

// Exec compiles, optimizes, and executes one SQL query under the
// profiler. The returned Result bundles the optimized MAL plan, the full
// execution trace, the result table, and execution statistics. The
// context cancels the execution: sequential runs stop between
// instructions, dataflow runs stop dispatching work.
//
// Identical concurrent statements share work: Exec calls whose SQL and
// compile geometry match an in-flight execution attach to it and
// receive the same result without running the plan (Stats.Shared
// reports "attached"); with WithResultCache configured, repeated
// identical statements within the TTL are served from the result cache
// ("resultcache"). Shared results are byte-identical to an unshared
// execution — the sharing key includes everything that decides result
// bytes (see internal/sharedwork) and excludes the worker count, which
// never does.
func (db *DB) Exec(ctx context.Context, query string, opts ...ExecOption) (*Result, error) {
	ec := db.execConfig(opts)
	comp, err := db.compile(query, ec.partitions, ec.morselOn)
	if err != nil {
		return nil, err
	}
	workers, autoTuned, tuneReason := comp.ResolveExec(ec.workers)
	morselRows, mauto, mreason := comp.ResolveMorsel(ec.morselRequest())
	autoTuned = autoTuned || mauto
	tuneReason = adaptive.JoinReasons(tuneReason, mreason)
	key := sharedwork.Key{SQL: query, Partitions: ec.partitions,
		Morsel: ec.morselOn, MorselRows: morselRows, Passes: db.passSpec}
	if out, ok := db.shared.Cache.Get(key); ok {
		db.execs.Add(1)
		return db.sharedResult(query, comp, out, "resultcache"), nil
	}
	out, err, attached, waiters := db.shared.Flight.Do(ctx, key, func() (*sharedwork.Outcome, error) {
		return db.execOutcome(ctx, query, comp, workers, morselRows, autoTuned, tuneReason)
	})
	if attached && err != nil && ctx.Err() == nil &&
		(errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)) {
		// The leader was canceled, this caller was not: its claim on the
		// shared run died with the leader, so it runs solo.
		out, err = db.execOutcome(ctx, query, comp, workers, morselRows, autoTuned, tuneReason)
		attached, waiters = false, 0
	}
	if err != nil {
		return nil, err
	}
	db.execs.Add(1)
	if attached {
		return db.sharedResult(query, comp, out, "attached"), nil
	}
	// Leader path: this call executed. Event-throughput accounting is
	// per execution, not per consumer — attached and cached consumers
	// reuse the trace without recounting it.
	db.events.Add(int64(len(out.Events)))
	db.rate.Add(int64(len(out.Events)))
	db.shared.Cache.Put(key, out)
	events := out.Events
	if waiters > 0 || db.shared.Cache != nil {
		// The outcome's event slice is shared with followers and/or the
		// result cache; trace.FromEventsOwned mutates, so own a copy.
		events = out.CloneEvents()
	}
	return &Result{
		traceView: traceView{events: events},
		Query:     query,
		Stats: Stats{
			Optimizer:    comp.Opt,
			Elapsed:      out.Elapsed,
			Instructions: len(comp.Plan.Instrs),
			Partitions:   out.Partitions,
			Workers:      out.Workers,
			MorselRows:   out.MorselRows,
			AutoTuned:    out.AutoTuned,
			TuneReason:   out.TuneReason,
			CacheHit:     out.CacheHit,
			RunID:        out.RunID,
		},
		plan: comp.Plan,
		res:  out.Res,
	}, nil
}

// execOutcome runs one compiled query to completion under the profiler
// and packages the execution as a shareable Outcome — the flight-leader
// body of Exec. History recording happens here, inside the shared run,
// so one shared execution is one history record and every consumer's
// RunID points at it.
func (db *DB) execOutcome(ctx context.Context, query string, comp planner.Compiled,
	workers, morselRows int, autoTuned bool, tuneReason string) (*sharedwork.Outcome, error) {
	plan := comp.Plan
	db.inflight.Add(1)
	defer db.inflight.Add(-1)
	// Two events (start + done) per instruction: preallocate exactly.
	// The sink is private to this run and read only after it completes,
	// so the lock-free variant applies.
	sink := profiler.NewOwnedSliceSink(2 * len(plan.Instrs))
	sinks := []profiler.Sink{sink}
	// With history enabled, a durable sink tees batched events into the
	// trace store while the query runs: events coalesce into
	// DefaultAppendBatch-event records, so the hot path pays one
	// buffered write per batch, not per event. The dot render and the
	// begin-record append happen before the elapsed clock starts, so
	// recorded wall times measure execution alone (the server QUERY
	// path measures the same way, keeping cross-path Compare honest).
	var rec *tracestore.RunWriter
	var hb *profiler.Batcher
	if db.hist != nil {
		var err error
		rec, err = db.hist.st.Begin(tracestore.RunMeta{
			SQL:          query,
			Dot:          plancache.DotText(plan, comp.Aux),
			Partitions:   comp.Partitions,
			Workers:      workers,
			Instructions: len(plan.Instrs),
			AutoTuned:    autoTuned,
			TuneReason:   tuneReason,
		})
		if err != nil {
			return nil, fmt.Errorf("stethoscope: history: %w", err)
		}
		hb = profiler.NewBatcher(rec, tracestore.DefaultAppendBatch, 0)
		hb.Instrument(db.reg)
		sinks = append(sinks, hb)
	}
	start := time.Now()
	res, err := db.eng.RunContext(ctx, plan, engine.Options{
		Workers:    workers,
		MorselRows: morselRows,
		Profiler:   profiler.New(sinks...),
		Label:      query,
	})
	elapsed := time.Since(start)
	db.latency.Observe(elapsed.Microseconds())
	var runID uint64
	if rec != nil {
		hb.Close() // flush the tail batch into the store
		st := tracestore.RunStats{ElapsedUs: elapsed.Microseconds()}
		if err != nil {
			st.Err = err.Error()
		} else {
			st.Rows = res.Rows()
			st.CacheHit = comp.Cached
		}
		if herr := rec.Finish(st); herr != nil && err == nil {
			return nil, fmt.Errorf("stethoscope: history: %w", herr)
		}
		runID = rec.ID()
	}
	if err != nil {
		return nil, err
	}
	return &sharedwork.Outcome{
		Res:        res,
		Events:     sink.Take(),
		Elapsed:    elapsed,
		RunID:      runID,
		Partitions: comp.Partitions,
		Workers:    workers,
		MorselRows: morselRows,
		AutoTuned:  autoTuned,
		TuneReason: tuneReason,
		CacheHit:   comp.Cached,
	}, nil
}

// sharedResult builds the Result for a consumer that did not run the
// plan (attached to an in-flight run, or served from the result cache).
// The outcome stays shared, so its events are always copied; the Stats
// echo the producing run's resolved settings and history id.
func (db *DB) sharedResult(query string, comp planner.Compiled, out *sharedwork.Outcome, via string) *Result {
	return &Result{
		traceView: traceView{events: out.CloneEvents()},
		Query:     query,
		Stats: Stats{
			Optimizer:    comp.Opt,
			Elapsed:      out.Elapsed,
			Instructions: len(comp.Plan.Instrs),
			Partitions:   out.Partitions,
			Workers:      out.Workers,
			MorselRows:   out.MorselRows,
			AutoTuned:    out.AutoTuned,
			TuneReason:   out.TuneReason,
			CacheHit:     out.CacheHit,
			RunID:        out.RunID,
			Shared:       via,
		},
		plan: comp.Plan,
		res:  out.Res,
	}
}

// Explain compiles and optimizes the query without executing it and
// returns the MAL listing. Partition settings (including Auto) are
// normalized and resolved exactly as Exec would.
func (db *DB) Explain(query string, opts ...ExecOption) (string, error) {
	ec := db.execConfig(opts)
	comp, err := db.compile(query, ec.partitions, ec.morselOn)
	if err != nil {
		return "", err
	}
	return comp.Plan.String(), nil
}

// DBStats is a point-in-time snapshot of the DB's serving counters.
type DBStats struct {
	// Cache reports plan-cache effectiveness (hits, misses, evictions,
	// occupancy). Zero-valued when caching is disabled.
	Cache plancache.Stats
	// InFlight is the number of Exec calls currently executing.
	InFlight int64
	// Execs is the number of completed successful executions — both
	// in-process Exec calls and QUERY commands of this DB's servers.
	Execs int64
	// Events is the total number of profiler events those executions
	// produced. The count is per event at the profiler, never per
	// transport datagram: a query whose trace leaves as coalesced EVTB
	// batches contributes exactly its event count, not its datagram
	// count.
	Events int64
	// EventsPerSec is the recent event throughput, averaged over a
	// sliding metrics.DefaultRateWindow (10s) window — not over the
	// DB's lifetime, so a long-idle server reports 0 and a fresh burst
	// reports the burst instead of a decayed average.
	EventsPerSec float64
	// SharedLed and SharedAttached report single-flight execution
	// sharing: executions that ran as flight leaders vs. executions
	// served by attaching to a concurrent identical run. Attached
	// executions still count in Execs — they completed a caller's query
	// — but ran no plan.
	SharedLed      int64
	SharedAttached int64
	// ResultCache reports result-cache effectiveness (hits, misses,
	// evictions, expirations, invalidations, occupancy). Zero-valued
	// unless the DB was opened WithResultCache.
	ResultCache sharedwork.CacheStats
	// Uptime is the time since Open.
	Uptime time.Duration
}

// observeQuery folds one successful server-side QUERY execution into
// the serving counters. events is the per-event count from the
// profiler, counted once per event regardless of how the trace was
// batched onto the wire.
func (db *DB) observeQuery(events int) {
	db.execs.Add(1)
	db.events.Add(int64(events))
	db.rate.Add(int64(events))
}

// Stats snapshots the serving counters: plan-cache effectiveness,
// in-flight queries, and profiler-event throughput.
func (db *DB) Stats() DBStats {
	st := DBStats{
		InFlight: db.inflight.Load(),
		Execs:    db.execs.Load(),
		Events:   db.events.Load(),
		Uptime:   time.Since(db.opened),
	}
	if db.cache != nil {
		st.Cache = db.cache.Stats()
	}
	st.SharedLed = db.shared.Flight.Led()
	st.SharedAttached = db.shared.Flight.Attached()
	st.ResultCache = db.shared.Cache.Stats()
	st.EventsPerSec = db.rate.PerSec()
	return st
}

// Metrics snapshots the DB's metrics registry: every counter, gauge,
// and histogram the engine scheduler, morsel kernel, plan cache,
// stores, profiler pipeline, and servers feed. Snapshots are
// per-metric consistent (see the registry contract in DESIGN.md) and
// cheap enough to poll.
func (db *DB) Metrics() MetricsSnapshot { return db.reg.Snapshot() }

// WriteMetrics writes the registry in the Prometheus text exposition
// format — the same payload the WithMetricsAddr endpoint and the
// METRICS wire command serve.
func (db *DB) WriteMetrics(w io.Writer) error { return db.reg.WritePrometheus(w) }

// Progress snapshots the live progress of every in-flight query on
// this DB's engine (in-process Exec/Stream calls and server QUERY
// commands alike), ordered by start. Row and morsel figures cover
// morsel-driven fragments; instruction figures cover every plan.
func (db *DB) Progress() []QueryProgress { return db.eng.Progress() }

// MetricsAddr reports the bound address of the observability HTTP
// endpoint, or "" when the DB was opened without WithMetricsAddr.
func (db *DB) MetricsAddr() string {
	if db.msrv == nil {
		return ""
	}
	return db.msrv.addr()
}

// disableMetrics detaches the engine and query-level instrumentation
// (benchmarks measure the hot path with metrics on vs off through
// this; the registry itself stays queryable).
func (db *DB) disableMetrics() {
	db.eng.SetMetrics(nil)
	db.latency = nil
	db.rate = nil
}

// DumpCSV writes a catalog table as CSV with a header line. table is a
// bare name ("lineitem", resolved in the sys schema) or a qualified one
// ("sys.lineitem"). limit bounds the row count (0 dumps everything).
func (db *DB) DumpCSV(w io.Writer, table string, limit int) error {
	schema, name := splitQualified(table)
	t, ok := db.cat.Table(schema, name)
	if !ok {
		names := make([]string, 0)
		for _, ti := range db.Tables() {
			names = append(names, ti.Name)
		}
		return fmt.Errorf("stethoscope: unknown table %q; have %s", table, strings.Join(names, ", "))
	}
	names := make([]string, len(t.Columns))
	bats := make([]*storage.BAT, len(t.Columns))
	for i, c := range t.Columns {
		names[i] = c.Name
		var err error
		if bats[i], err = t.ColumnData(c.Name); err != nil {
			return fmt.Errorf("stethoscope: %w", err)
		}
	}
	if _, err := fmt.Fprintln(w, strings.Join(names, ",")); err != nil {
		return err
	}
	rows := t.Rows()
	if limit > 0 && limit < rows {
		rows = limit
	}
	var b strings.Builder
	for i := 0; i < rows; i++ {
		b.Reset()
		for c, col := range t.Columns {
			if c > 0 {
				b.WriteByte(',')
			}
			bat := bats[c]
			switch col.Kind {
			case storage.Flt:
				b.WriteString(strconv.FormatFloat(bat.FltAt(i), 'g', -1, 64))
			case storage.Str:
				b.WriteString(bat.StrAt(i))
			case storage.Date:
				b.WriteString(sql.FormatDate(bat.IntAt(i)))
			default:
				b.WriteString(strconv.FormatInt(bat.IntAt(i), 10))
			}
		}
		b.WriteByte('\n')
		if _, err := io.WriteString(w, b.String()); err != nil {
			return err
		}
	}
	return nil
}
